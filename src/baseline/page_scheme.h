// Analytic comparison of compatible-page-size choices (§4.4): GCD, MAX, and LCM. The numbers
// here back the bench_sec44_page_size ablation; the LCM scheme's *measured* fragmentation
// comes from running the real allocator, while GCD/MAX pathologies are closed-form.

#ifndef JENGA_SRC_BASELINE_PAGE_SCHEME_H_
#define JENGA_SRC_BASELINE_PAGE_SCHEME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/kv_spec.h"

namespace jenga {

// Modeled throughput retention of GCD-partitioned KV layouts: tensors lose contiguity along
// the dimensions efficient kernels require, so attention runs on fallback kernels (§4.4's
// MuxServe discussion). A documented constant, not a measurement.
inline constexpr double kGcdKernelEfficiency = 0.75;

struct PageSchemeAnalysis {
  std::string scheme;
  int64_t compatible_page_bytes = 0;
  // Relative attention-kernel efficiency (1.0 = native paged kernels).
  double kernel_efficiency = 1.0;
  // Worst per-group tokens-per-page needed to fill one compatible page without internal
  // fragmentation (the Jamba 1344-token pathology for MAX).
  int64_t worst_tokens_per_page = 0;
  // Expected internal fragmentation for a request of `avg_request_tokens`, as a fraction of
  // its KV footprint.
  double internal_frag_fraction = 0.0;
};

// Analyzes all three schemes for one model spec and an average request length.
[[nodiscard]] std::vector<PageSchemeAnalysis> AnalyzePageSchemes(const KvSpec& spec,
                                                                 int64_t avg_request_tokens);

}  // namespace jenga

#endif  // JENGA_SRC_BASELINE_PAGE_SCHEME_H_
