// Content-addressed block hashing for prefix caching. Hashes are chained: the hash of block i
// commits to every token in blocks 0..i, so equal hashes identify equal *prefixes* — the
// property prefix caching relies on.

#ifndef JENGA_SRC_CORE_BLOCK_HASH_H_
#define JENGA_SRC_CORE_BLOCK_HASH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/core/types.h"

namespace jenga {

// Initial chain value for a given salt; ChainBlockHashes starts from this, so incremental
// hashers (InitBlockChain + repeated ExtendBlockHash) produce identical hashes.
[[nodiscard]] BlockHash InitBlockChain(uint64_t salt);

// The per-group chain salt the KV manager hashes with (group index → salt). Exposed here so
// layers that compute chains *about* a manager's cache — the cluster router scoring a prompt
// against per-replica residency summaries — produce hashes identical to the ones the manager
// registered. Changing this constant invalidates every golden that pins hash-dependent
// placement.
[[nodiscard]] inline uint64_t GroupChainSalt(int group_index) {
  return (static_cast<uint64_t>(group_index) + 1) * 0x9E3779B97F4A7C15ull;
}

// Chained hash of one more block given the previous chain value.
[[nodiscard]] BlockHash ExtendBlockHash(BlockHash previous, std::span<const int32_t> block_tokens);

// Hashes all *full* blocks of `tokens` (floor(len / block_size) of them). `salt` namespaces
// the chain, e.g. per group kind, so identical token streams in different coordinate spaces
// (text blocks vs Mamba checkpoints) never alias.
[[nodiscard]] std::vector<BlockHash> ChainBlockHashes(std::span<const int32_t> tokens,
                                                      int block_size, uint64_t salt);

// Longest prefix boundary valid in *every* group (§5.2): each element of `valids` is one
// group's bitmap over the same boundary indices (all must share a size); returns the largest
// index at which all bitmaps are true. Index 0 (the empty prefix) is always valid.
[[nodiscard]] int64_t LongestCommonValidPrefix(std::span<const std::vector<bool>> valids);

}  // namespace jenga

#endif  // JENGA_SRC_CORE_BLOCK_HASH_H_
