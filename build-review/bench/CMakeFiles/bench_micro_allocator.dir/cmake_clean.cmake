file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_allocator.dir/bench_micro_allocator.cc.o"
  "CMakeFiles/bench_micro_allocator.dir/bench_micro_allocator.cc.o.d"
  "bench_micro_allocator"
  "bench_micro_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
