#include "src/offload/host_pool.h"

#include "src/common/check.h"

namespace jenga {

HostPool::HostPool(int64_t capacity_bytes) : capacity_bytes_(capacity_bytes) {
  JENGA_CHECK_GE(capacity_bytes, 0);
}

void HostPool::MakeRoom(int64_t incoming) {
  while (used_bytes_ + incoming > capacity_bytes_ && !lru_.empty()) {
    const auto oldest = lru_.begin();
    const LruRef ref = oldest->second;
    lru_.erase(oldest);
    if (ref.is_set) {
      const auto it = sets_.find(ref.id);
      JENGA_CHECK(it != sets_.end());
      used_bytes_ -= it->second.set.bytes;
      bytes_evicted_ += it->second.set.bytes;
      sets_evicted_ += 1;
      JENGA_AUDIT_HOOK(audit_, OnHostSetRemoved(ref.id, it->second.set.bytes, /*evicted=*/true));
      sets_.erase(it);
    } else {
      const auto it = pages_.find(ref.key);
      JENGA_CHECK(it != pages_.end());
      used_bytes_ -= it->second.page.bytes;
      bytes_evicted_ += it->second.page.bytes;
      pages_evicted_ += 1;
      if (audit_ != nullptr) [[unlikely]] {
        audit_->OnHostPageRemoved(ref.key.manager, ref.key.group, ref.key.hash,
                                  it->second.page.bytes, /*evicted=*/true);
      }
      pages_.erase(it);
    }
  }
}

void HostPool::Unlink(uint64_t seq) {
  const auto it = lru_.find(seq);
  JENGA_CHECK(it != lru_.end());
  lru_.erase(it);
}

void HostPool::ForceShrink(int64_t new_capacity_bytes) {
  JENGA_CHECK_GE(new_capacity_bytes, 0);
  capacity_bytes_ = new_capacity_bytes;
  MakeRoom(0);
}

void HostPool::Clear() {
  while (!lru_.empty()) {
    const auto oldest = lru_.begin();
    const LruRef ref = oldest->second;
    lru_.erase(oldest);
    if (ref.is_set) {
      const auto it = sets_.find(ref.id);
      JENGA_CHECK(it != sets_.end());
      used_bytes_ -= it->second.set.bytes;
      JENGA_AUDIT_HOOK(audit_, OnHostSetRemoved(ref.id, it->second.set.bytes, /*evicted=*/false));
      sets_.erase(it);
    } else {
      const auto it = pages_.find(ref.key);
      JENGA_CHECK(it != pages_.end());
      used_bytes_ -= it->second.page.bytes;
      if (audit_ != nullptr) [[unlikely]] {
        audit_->OnHostPageRemoved(ref.key.manager, ref.key.group, ref.key.hash,
                                  it->second.page.bytes, /*evicted=*/false);
      }
      pages_.erase(it);
    }
  }
  JENGA_CHECK_EQ(used_bytes_, 0);
}

bool HostPool::PutSwapSet(RequestId id, HostSwapSet set) {
  JENGA_CHECK_GE(set.bytes, 0);
  if (fault_ != nullptr && fault_->Fire(FaultSite::kHostPoolAlloc)) {
    injected_failures_ += 1;
    rejected_inserts_ += 1;
    return false;
  }
  if (set.bytes > capacity_bytes_) {
    rejected_inserts_ += 1;
    return false;
  }
  if (const auto it = sets_.find(id); it != sets_.end()) {
    used_bytes_ -= it->second.set.bytes;
    Unlink(it->second.seq);
    JENGA_AUDIT_HOOK(audit_, OnHostSetRemoved(id, it->second.set.bytes, /*evicted=*/false));
    sets_.erase(it);
  }
  MakeRoom(set.bytes);
  const uint64_t seq = next_seq_++;
  used_bytes_ += set.bytes;
  lru_.emplace(seq, LruRef{/*is_set=*/true, id, PageKey{}});
  const int64_t bytes = set.bytes;
  sets_.emplace(id, SetEntry{std::move(set), seq});
  JENGA_AUDIT_HOOK(audit_, OnHostSetStored(id, bytes));
  return true;
}

bool HostPool::PutPage(const PageKey& key, HostCachePage page) {
  JENGA_CHECK_GE(page.bytes, 0);
  if (fault_ != nullptr && fault_->Fire(FaultSite::kHostPoolAlloc)) {
    injected_failures_ += 1;
    rejected_inserts_ += 1;
    return false;
  }
  if (page.bytes > capacity_bytes_) {
    rejected_inserts_ += 1;
    return false;
  }
  if (const auto it = pages_.find(key); it != pages_.end()) {
    used_bytes_ -= it->second.page.bytes;
    Unlink(it->second.seq);
    if (audit_ != nullptr) [[unlikely]] {
      audit_->OnHostPageRemoved(key.manager, key.group, key.hash, it->second.page.bytes,
                                /*evicted=*/false);
    }
    pages_.erase(it);
  }
  MakeRoom(page.bytes);
  const uint64_t seq = next_seq_++;
  used_bytes_ += page.bytes;
  lru_.emplace(seq, LruRef{/*is_set=*/false, kNoRequest, key});
  pages_.emplace(key, PageEntry{page, seq});
  JENGA_AUDIT_HOOK(audit_, OnHostPageStored(key.manager, key.group, key.hash, page.bytes));
  return true;
}

const HostSwapSet* HostPool::FindSwapSet(RequestId id) const {
  const auto it = sets_.find(id);
  return it == sets_.end() ? nullptr : &it->second.set;
}

const HostCachePage* HostPool::FindPage(const PageKey& key) const {
  const auto it = pages_.find(key);
  return it == pages_.end() ? nullptr : &it->second.page;
}

bool HostPool::EraseSwapSet(RequestId id) {
  const auto it = sets_.find(id);
  if (it == sets_.end()) {
    return false;
  }
  used_bytes_ -= it->second.set.bytes;
  Unlink(it->second.seq);
  JENGA_AUDIT_HOOK(audit_, OnHostSetRemoved(id, it->second.set.bytes, /*evicted=*/false));
  sets_.erase(it);
  return true;
}

bool HostPool::ErasePage(const PageKey& key) {
  const auto it = pages_.find(key);
  if (it == pages_.end()) {
    return false;
  }
  used_bytes_ -= it->second.page.bytes;
  Unlink(it->second.seq);
  if (audit_ != nullptr) [[unlikely]] {
    audit_->OnHostPageRemoved(key.manager, key.group, key.hash, it->second.page.bytes,
                              /*evicted=*/false);
  }
  pages_.erase(it);
  return true;
}

}  // namespace jenga
