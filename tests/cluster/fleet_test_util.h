// Shared fixtures for the fleet/cluster tests: a tiny prefix-caching engine config and
// helpers for building shared-prefix requests whose routing-group chains are easy to reason
// about.

#ifndef JENGA_TESTS_CLUSTER_FLEET_TEST_UTIL_H_
#define JENGA_TESTS_CLUSTER_FLEET_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "src/cluster/fleet_router.h"
#include "src/engine/engine.h"
#include "tests/engine/test_models.h"

namespace jenga {

// TinyFullModel on the 1 GB test GPU, prefix caching on: routing group 0, 16-token blocks.
inline EngineConfig FleetEngineConfig() {
  EngineConfig config;
  config.model = TinyFullModel();
  config.gpu = TestGpu();
  config.tokens_per_page = 16;
  config.enable_prefix_caching = true;
  return config;
}

inline FleetConfig TestFleetConfig(int num_replicas, RoutePolicy policy,
                                   uint64_t seed = 0) {
  FleetConfig config;
  config.num_replicas = num_replicas;
  config.engine = FleetEngineConfig();
  config.policy = policy;
  config.seed = seed;
  return config;
}

// A prompt of `len` tokens whose first min(len, article_len) tokens are the shared prefix of
// `article`; the tail (the "question") is salted by `question` so distinct questions about
// one article share exactly the article blocks. Distinct articles never share a block.
inline Prompt ArticlePrompt(int article, int64_t len, int question = 0,
                            int64_t article_len = 64) {
  Prompt prompt;
  for (int64_t i = 0; i < len; ++i) {
    const int32_t token =
        i < article_len
            ? 1000 * (article + 1) + static_cast<int32_t>(i % 997)
            : 500000 + 1000 * question + static_cast<int32_t>(i % 997);
    prompt.tokens.push_back(token);
  }
  return prompt;
}

}  // namespace jenga

#endif  // JENGA_TESTS_CLUSTER_FLEET_TEST_UTIL_H_
