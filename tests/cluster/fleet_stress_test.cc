// Fleet stress harness: N producer threads submit shared-article requests through the
// concurrent FleetFrontend while every replica runs a per-step AllocatorAuditor hook under
// memory pressure (small pools → preemption churn, occupancy spillover). Runs under the tsan
// preset via scripts/check.sh — the cluster prefix index is written by every engine thread
// (residency sinks) and read by every producer thread (routing), which is exactly the race
// surface this test exists to exercise. Seed overridable with JENGA_STRESS_SEED.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/audit/allocator_auditor.h"
#include "src/cluster/fleet_frontend.h"
#include "src/common/random.h"
#include "src/model/kv_spec.h"
#include "tests/cluster/fleet_test_util.h"

namespace jenga {
namespace {

uint64_t StressSeed() {
  const char* env = std::getenv("JENGA_STRESS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 42;
}

FleetConfig PressureFleetConfig(int num_replicas, RoutePolicy policy) {
  FleetConfig config = TestFleetConfig(num_replicas, policy, StressSeed());
  const KvSpec spec = MakeJengaSpec(config.engine.model, 16, false);
  // Small per-replica pools: the producers' combined working set forces preemption and
  // occupancy-based spillover, not just queue-depth spillover.
  config.engine.pool_bytes_override = spec.LcmPageBytes() * 24;
  config.spill_queue_depth = 4;
  config.spill_occupancy = 0.90;
  return config;
}

void RunFleetStress(int num_replicas, RoutePolicy policy, int producers, int per_producer) {
  std::atomic<int64_t> audits{0};
  ServingFrontend::Options options;
  options.queue_capacity = 64;
  options.step_observer = [&audits](Engine& engine) {
    // Each replica's engine thread audits its own allocator every 64th step; thread_local
    // keeps the counters independent per engine thread.
    static thread_local int64_t step = 0;
    if ((step++ & 63) != 0) {
      return;
    }
    static thread_local AllocatorAuditor auditor;
    auditor.AttachAllocator(&engine.kv().allocator_mutable());
    const auto violations = auditor.Audit();
    auditor.DetachAll();
    ASSERT_TRUE(violations.empty()) << violations.front();
    audits.fetch_add(1, std::memory_order_relaxed);
  };
  FleetFrontend fleet(PressureFleetConfig(num_replicas, policy), options);
  fleet.Start();

  const uint64_t seed = StressSeed();
  std::atomic<int64_t> terminal{0};
  std::atomic<int64_t> refused{0};
  fleet.RunClients(producers, [&](int client) {
    Rng rng(seed + static_cast<uint64_t>(client) * 7919);
    std::vector<StreamHandle> streams;
    std::vector<RequestId> ids;
    for (int i = 0; i < per_producer; ++i) {
      const RequestId id = fleet.NextRequestId();
      // Few articles, many producers: concentrated prefixes make replicas disagree hard on
      // affinity while pressure forces spill decisions.
      const int article = static_cast<int>(rng.UniformInt(0, 3));
      Request r = MakeRequest(id, ArticlePrompt(article, rng.UniformInt(48, 128), i),
                              rng.UniformInt(4, 24), 0.0);
      StreamHandle stream;
      if (rng.Bernoulli(0.25)) {
        if (!fleet.TrySubmitAsync(std::move(r), &stream).ok()) {
          refused.fetch_add(1, std::memory_order_relaxed);
          continue;  // Backpressure: drop this one, keep producing.
        }
      } else {
        stream = fleet.SubmitAsync(std::move(r));
      }
      if (stream->phase.load() == StreamPhase::kRejected) {
        continue;  // Only possible during shutdown; not in this harness.
      }
      streams.push_back(stream);
      ids.push_back(id);
      if (rng.Bernoulli(0.2)) {
        fleet.CancelAsync(ids[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))]);
      }
      if (rng.Bernoulli(0.4)) {
        while (!stream->Done()) {
          std::this_thread::yield();
        }
      }
    }
    for (const StreamHandle& stream : streams) {
      while (!stream->Done()) {
        std::this_thread::yield();
      }
      terminal.fetch_add(1, std::memory_order_relaxed);
    }
  });
  fleet.Shutdown();

  // Books balance fleet-wide: every routed request was accepted by exactly one replica
  // frontend and reached a terminal state.
  const FleetCounters fc = fleet.counters();
  const ServingFrontend::Counters c = fleet.frontend_counters();
  EXPECT_EQ(fc.submitted, c.submitted);
  EXPECT_EQ(fc.submitted + refused.load(),
            static_cast<int64_t>(producers) * per_producer);
  EXPECT_EQ(fc.backpressure_rejections, refused.load());
  EXPECT_EQ(terminal.load(), c.submitted);
  EXPECT_EQ(c.rejected, 0);
  EXPECT_EQ(c.submitted, c.admitted + c.cancelled_queued);
  EXPECT_EQ(c.admitted, c.finished + c.cancelled + c.failed);
  EXPECT_GT(c.finished, 0);
  EXPECT_GT(audits.load(), 0);
  if (policy == RoutePolicy::kRoundRobin) {
    EXPECT_EQ(fc.routed_round_robin, fc.submitted);
  } else {
    EXPECT_EQ(fc.routed_affinity + fc.routed_spill + fc.routed_least_loaded, fc.submitted);
  }

  // Final quiescent state: every replica's allocator is green.
  AllocatorAuditor auditor;
  for (int i = 0; i < fleet.num_replicas(); ++i) {
    auditor.AttachAllocator(&fleet.replica(i).engine().kv().allocator_mutable());
  }
  const auto violations = auditor.Audit();
  EXPECT_TRUE(violations.empty()) << violations.front();
  auditor.DetachAll();
}

TEST(FleetStressTest, TwoReplicasAffinityEightProducers) {
  RunFleetStress(/*num_replicas=*/2, RoutePolicy::kPrefixAffinity, /*producers=*/8,
                 /*per_producer=*/16);
}

TEST(FleetStressTest, FourReplicasAffinitySixProducers) {
  RunFleetStress(/*num_replicas=*/4, RoutePolicy::kPrefixAffinity, /*producers=*/6,
                 /*per_producer=*/12);
}

TEST(FleetStressTest, TwoReplicasRoundRobin) {
  RunFleetStress(/*num_replicas=*/2, RoutePolicy::kRoundRobin, /*producers=*/4,
                 /*per_producer=*/12);
}

}  // namespace
}  // namespace jenga
