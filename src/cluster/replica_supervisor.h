// Replica liveness for the fleet layer: which replicas are routable, which are stalled, and
// how a dead replica's work is rebuilt for re-submission.
//
// Failure model (DESIGN.md §10): a replica death loses the replica's KV pool and in-flight
// scheduler state but not the cluster's record of its requests — the driver (FleetRouter or
// FleetFrontend) cancels the dead replica's work through the engine's CancelRequest path
// (full resource reclamation, so the dead engine still audits clean) and re-submits each
// recoverable request to a surviving replica, recomputing from the prompt exactly like a
// preemption-by-recompute (PagedAttention's recovery primitive, lifted to fleet scope).
// A stall is milder: the replica keeps its state but is skipped by the step loop and marked
// unroutable until the stall expires.
//
// Threading: the alive flags are atomics so the threaded FleetFrontend's routing snapshots
// may read them lock-free while a supervisor thread marks a death. Stall bookkeeping is
// step-indexed and used only by the deterministic single-threaded FleetRouter.

#ifndef JENGA_SRC_CLUSTER_REPLICA_SUPERVISOR_H_
#define JENGA_SRC_CLUSTER_REPLICA_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/engine/request.h"

namespace jenga {

class ReplicaSupervisor {
 public:
  explicit ReplicaSupervisor(int num_replicas);

  ReplicaSupervisor(const ReplicaSupervisor&) = delete;
  ReplicaSupervisor& operator=(const ReplicaSupervisor&) = delete;

  [[nodiscard]] int num_replicas() const { return static_cast<int>(alive_.size()); }

  // Liveness. MarkDead is one-way; alive() uses acquire so a reader that observes a closed
  // replica queue also observes the death that closed it.
  [[nodiscard]] bool alive(int replica) const {
    return alive_[static_cast<size_t>(replica)]->load(std::memory_order_acquire);
  }
  void MarkDead(int replica) {
    alive_[static_cast<size_t>(replica)]->store(false, std::memory_order_release);
  }
  [[nodiscard]] int num_alive() const;
  // Lowest-index live replica; -1 when none (the drivers never let that happen).
  [[nodiscard]] int FirstAlive() const;

  // Stalls (deterministic driver only): the replica skips steps while step < stall_until.
  void MarkStalled(int replica, int64_t until_step) {
    stall_until_[static_cast<size_t>(replica)] = until_step;
  }
  [[nodiscard]] bool stalled(int replica, int64_t step) const {
    return step < stall_until_[static_cast<size_t>(replica)];
  }

  // Rebuilds a harvested request for re-submission to a survivor: fresh scheduler state,
  // same id/prompt/output target/arrival/deadline. Progress is recomputed from the prompt on
  // the new replica (the deadline stays absolute, so a revived request may still expire
  // there — a legitimate terminal state, not a lost request).
  [[nodiscard]] static Request ReviveForReroute(const Request& dead);

 private:
  // unique_ptr keeps the atomics address-stable without requiring a movable atomic.
  std::vector<std::unique_ptr<std::atomic<bool>>> alive_;
  std::vector<int64_t> stall_until_;
};

}  // namespace jenga

#endif  // JENGA_SRC_CLUSTER_REPLICA_SUPERVISOR_H_
