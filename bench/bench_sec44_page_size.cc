// §4.4 ablation: choices of the compatible page size — GCD vs MAX vs LCM. Closed-form
// pathologies (GCD's kernel fallback, MAX's Jamba 1344-tokens-per-page requirement) plus the
// LCM scheme's *measured* internal fragmentation from running the real allocator on a
// ShareGPT-length workload (the paper's 1085-token average).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/page_scheme.h"
#include "src/common/random.h"
#include "src/core/jenga_allocator.h"
#include "src/engine/kv_manager.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

void AnalyzeModel(const ModelConfig& model, int64_t avg_request_tokens) {
  const KvSpec spec = MakeJengaSpec(model, 16, /*vision_cache=*/true);
  std::printf("\n[%s, avg request %lld tokens]\n", model.name.c_str(),
              static_cast<long long>(avg_request_tokens));
  PrintRow({{8, "Scheme"},
            {18, "compatible page"},
            {14, "kernel eff"},
            {18, "worst tok/page"},
            {20, "internal frag"}});
  PrintRule();
  for (const PageSchemeAnalysis& a : AnalyzePageSchemes(spec, avg_request_tokens)) {
    PrintRow({{8, a.scheme},
              {18, FmtI(a.compatible_page_bytes) + " B"},
              {14, Fmt("%.2f", a.kernel_efficiency)},
              {18, a.worst_tokens_per_page > 0 ? FmtI(a.worst_tokens_per_page) : "-"},
              {20, Pct(a.internal_frag_fraction)}});
  }
}

// Measured LCM internal fragmentation: run a ShareGPT-length mix through the Jenga manager
// and report the empty-small-page fraction at peak occupancy. Under an abundant pool each
// request parks on its own large pages (empties idle but reclaimable); under a tight pool
// step 4 of §5.4 fills them with other requests' pages.
double MeasuredLcmFrag(const ModelConfig& model, int64_t pool_bytes) {
  const KvSpec spec = MakeJengaSpec(model, 16, true);
  KvManager::Options options;
  options.tokens_per_page = 16;
  options.enable_prefix_caching = false;
  options.jenga = true;
  options.tokens_per_image = std::max(model.vision.tokens_per_image, 1);
  KvManager kv(spec, spec, pool_bytes, options);

  ShareGptDataset dataset;
  Rng rng(0x44);
  std::vector<Request> live;
  double worst = 0.0;
  for (int i = 0; i < 64; ++i) {
    WorkloadItem item = dataset.Sample(rng);
    Request r = MakeRequest(i, std::move(item.prompt), item.output_len, 0.0);
    kv.OnAdmit(r, i);
    if (!kv.AllocateForTokens(r, r.prompt_len(), i)) {
      kv.Release(r, i);
      continue;
    }
    r.num_computed_tokens = r.prompt_len();
    kv.OnStepComputed(r, i);
    live.push_back(std::move(r));
    // Steady churn: occasionally retire the oldest request.
    if (live.size() > 12) {
      kv.Release(live.front(), i);
      live.erase(live.begin());
    }
    const KvManager::MemoryStats stats = kv.GetMemoryStats();
    const int64_t allocated = stats.used_bytes + stats.internal_frag_bytes;
    if (allocated > 0) {
      worst = std::max(worst, static_cast<double>(stats.internal_frag_bytes) /
                                  static_cast<double>(allocated));
    }
  }
  return worst;
}

void Run() {
  PrintHeader("Sec 4.4: Compatible-page-size ablation — GCD vs MAX vs LCM");
  AnalyzeModel(Jamba52B_Fp8(), /*avg_request_tokens=*/1085);  // ShareGPT average (§4.4).
  AnalyzeModel(Llama32_11B_Vision(), 6236);                   // MMMU-pro average.
  AnalyzeModel(Ministral8B(), 92408);                         // arXiv-QA average (§7.2).

  std::printf("\n[measured LCM internal fragmentation under ShareGPT churn]\n");
  PrintRow({{24, "Model"}, {26, "abundant pool (worst)"}, {26, "tight pool (worst)"}});
  PrintRule();
  for (const ModelConfig& model :
       {Jamba52B_Fp8(), Llama32_11B_Vision(), Gemma2_27B()}) {
    const KvSpec spec = MakeJengaSpec(model, 16, true);
    PrintRow({{24, model.name},
              {26, Pct(MeasuredLcmFrag(model, 64LL << 30))},
              {26, Pct(MeasuredLcmFrag(model, spec.LcmPageBytes() * 14))}});
  }
  std::printf(
      "\nShape checks vs paper: GCD needs fallback kernels whenever group pages differ; MAX\n"
      "forces Jamba's self-attention to 1344 tokens per page (more than the 1085-token\n"
      "ShareGPT average request, i.e. >1 page of waste per request); LCM keeps native\n"
      "kernels and its measured internal fragmentation stays small thanks to request-aware\n"
      "allocation.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
