// Multimodal serving: Llama 3.2 11B Vision (mllama) on an MMMU-pro-like workload. Shows the
// three memory types Jenga coordinates for this model — self-attention KV over text tokens,
// cross-attention KV over image tokens, and the vision-embedding cache that is freed as
// chunked prefill consumes it (§6.2).

#include <cstdio>

#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

using namespace jenga;

int main() {
  const ModelConfig model = Llama32_11B_Vision();
  EngineConfig config = JengaProfile(model, H100());
  config.max_batched_tokens_override = 1024;  // Chunked prefill so the freeing is visible.
  Engine engine(std::move(config));

  MmmuProDataset dataset(model.vision.tokens_per_image);
  Rng rng(21);
  for (Request& r : GenerateBatch(dataset, 8, rng)) {
    std::printf("request %lld: %lld tokens (%lld image)\n", static_cast<long long>(r.id),
                static_cast<long long>(r.prompt_len()),
                static_cast<long long>(r.ImageTokensBefore(r.prompt_len())));
    engine.Submit(std::move(r));
  }
  engine.RunToCompletion();

  std::printf("\ncompleted %lld requests in %.2fs\n",
              static_cast<long long>(engine.metrics().CompletedRequests()), engine.now());
  std::printf("vision encoder runs: %lld (one per request — embeddings are cached and then\n"
              "freed as the chunked prefill consumes them)\n",
              static_cast<long long>(engine.metrics().vision_encoder_runs));

  // The per-group layout Jenga derived for this model.
  const KvSpec& spec = engine.kv().alloc_spec();
  std::printf("\nKV groups:\n");
  for (const KvGroupSpec& group : spec.groups) {
    std::printf("  %-16s %2d layers, page %8lld B\n", group.name.c_str(), group.num_layers,
                static_cast<long long>(group.page_bytes));
  }
  std::printf("compatible (LCM) page: %lld B\n",
              static_cast<long long>(spec.LcmPageBytes()));
  return 0;
}
