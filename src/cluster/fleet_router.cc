#include "src/cluster/fleet_router.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/core/block_hash.h"

namespace jenga {

int PickRoutingGroup(const KvSpec& spec) {
  for (int pass = 0; pass < 2; ++pass) {
    for (int g = 0; g < static_cast<int>(spec.groups.size()); ++g) {
      const KvGroupSpec& group = spec.groups[static_cast<size_t>(g)];
      if (group.scope != GroupScope::kAllTokens || group.tokens_per_page <= 0 ||
          group.kind == GroupKind::kMamba || group.kind == GroupKind::kVisionEmbed) {
        continue;
      }
      if (pass == 0 && group.kind != GroupKind::kFullAttention) {
        continue;
      }
      return g;
    }
  }
  return -1;
}

namespace {

[[nodiscard]] bool Saturated(const ReplicaLoadView& load, int spill_queue_depth,
                             double spill_occupancy) {
  return load.draining || load.waiting >= spill_queue_depth ||
         load.occupancy >= spill_occupancy;
}

// Least-loaded live replica by waiting+running (ties → lowest index), optionally restricted
// to unsaturated replicas; -1 when the restriction filters everyone out.
int PickLeastLoaded(std::span<const ReplicaLoadView> loads, int spill_queue_depth,
                    double spill_occupancy, bool unsaturated_only) {
  int best = -1;
  int64_t best_load = 0;
  for (int i = 0; i < static_cast<int>(loads.size()); ++i) {
    const ReplicaLoadView& load = loads[static_cast<size_t>(i)];
    if (!load.alive) {
      continue;
    }
    if (unsaturated_only && Saturated(load, spill_queue_depth, spill_occupancy)) {
      continue;
    }
    const int64_t total = load.waiting + load.running;
    if (best < 0 || total < best_load) {
      best = i;
      best_load = total;
    }
  }
  return best;
}

}  // namespace

const char* RoutePolicyName(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kPrefixAffinity:
      return "prefix-affinity";
  }
  return "unknown";
}

const char* RouteReasonName(RouteDecision::Reason reason) {
  switch (reason) {
    case RouteDecision::Reason::kAffinity:
      return "affinity";
    case RouteDecision::Reason::kSpill:
      return "spill";
    case RouteDecision::Reason::kLeastLoaded:
      return "least-loaded";
    case RouteDecision::Reason::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

RouteDecision DecideRoute(RoutePolicy policy, int spill_queue_depth, double spill_occupancy,
                          std::span<const ReplicaLoadView> loads,
                          std::span<const int64_t> affinity_blocks, int64_t round_robin_slot) {
  const int n = static_cast<int>(loads.size());
  JENGA_CHECK_GT(n, 0);
  // Dead replicas are invisible: every scan below is over the live subset. With all replicas
  // alive (the default-constructed view), the decision is identical to the pre-liveness
  // policy — the fault-free path stays byte-for-byte.
  int num_alive = 0;
  for (const ReplicaLoadView& load : loads) {
    num_alive += load.alive ? 1 : 0;
  }
  JENGA_CHECK_GT(num_alive, 0) << "DecideRoute needs at least one live replica";
  RouteDecision decision;
  decision.all_saturated = true;
  for (const ReplicaLoadView& load : loads) {
    if (load.alive && !Saturated(load, spill_queue_depth, spill_occupancy)) {
      decision.all_saturated = false;
      break;
    }
  }

  if (policy == RoutePolicy::kRoundRobin) {
    // Rotate over the live subset: slot k picks the (k mod num_alive)-th live replica, so the
    // rotation stays uniform over survivors after a death.
    int64_t slot = round_robin_slot % num_alive;
    for (int i = 0; i < n; ++i) {
      if (!loads[static_cast<size_t>(i)].alive) {
        continue;
      }
      if (slot == 0) {
        decision.replica = i;
        break;
      }
      --slot;
    }
    decision.reason = RouteDecision::Reason::kRoundRobin;
    return decision;
  }

  int affine = -1;
  for (int i = 0; i < static_cast<int>(affinity_blocks.size()); ++i) {
    if (!loads[static_cast<size_t>(i)].alive) {
      continue;
    }
    const int64_t blocks = affinity_blocks[static_cast<size_t>(i)];
    if (blocks > decision.affinity_blocks) {
      affine = i;
      decision.affinity_blocks = blocks;
    }
  }
  if (affine >= 0 &&
      !Saturated(loads[static_cast<size_t>(affine)], spill_queue_depth, spill_occupancy)) {
    decision.replica = affine;
    decision.reason = RouteDecision::Reason::kAffinity;
    return decision;
  }

  int pick = PickLeastLoaded(loads, spill_queue_depth, spill_occupancy,
                             /*unsaturated_only=*/true);
  if (pick < 0) {
    pick = PickLeastLoaded(loads, spill_queue_depth, spill_occupancy,
                           /*unsaturated_only=*/false);
  }
  decision.replica = pick;
  decision.reason = affine >= 0 ? RouteDecision::Reason::kSpill
                                : RouteDecision::Reason::kLeastLoaded;
  return decision;
}

FleetRouter::FleetRouter(FleetConfig config)
    : config_(std::move(config)), supervisor_(config_.num_replicas) {
  JENGA_CHECK_GT(config_.num_replicas, 0);
  JENGA_CHECK_GT(config_.spill_queue_depth, 0);
  JENGA_CHECK_GT(config_.stall_steps, 0);
  if (config_.fleet_fault.enabled()) {
    fleet_fault_ = std::make_unique<FaultInjector>(config_.fleet_fault);
  }
  if (!config_.replica_pool_bytes.empty()) {
    JENGA_CHECK_EQ(static_cast<int>(config_.replica_pool_bytes.size()), config_.num_replicas)
        << "replica_pool_bytes must name every replica (or be empty)";
  }
  replicas_.reserve(static_cast<size_t>(config_.num_replicas));
  for (int i = 0; i < config_.num_replicas; ++i) {
    EngineConfig engine = config_.engine;
    if (!config_.replica_pool_bytes.empty() &&
        config_.replica_pool_bytes[static_cast<size_t>(i)] > 0) {
      engine.pool_bytes_override = config_.replica_pool_bytes[static_cast<size_t>(i)];
    }
    replicas_.push_back(std::make_unique<Engine>(std::move(engine)));
  }

  const KvSpec& spec = replicas_[0]->kv().alloc_spec();
  routing_group_ = config_.engine.enable_prefix_caching ? PickRoutingGroup(spec) : -1;
  if (routing_group_ >= 0) {
    routing_block_size_ = spec.groups[static_cast<size_t>(routing_group_)].tokens_per_page;
    routing_salt_ = GroupChainSalt(routing_group_);
  }
  index_ = std::make_unique<ClusterPrefixIndex>(config_.num_replicas, routing_group_);
  for (int i = 0; i < config_.num_replicas; ++i) {
    replicas_[static_cast<size_t>(i)]->kv().allocator_mutable().SetResidencySink(
        index_->feed(i));
  }
  rr_cursor_ = static_cast<int64_t>(config_.seed % static_cast<uint64_t>(config_.num_replicas));
}

std::vector<BlockHash> FleetRouter::RoutingChain(const Prompt& prompt) const {
  if (routing_group_ < 0) {
    return {};
  }
  return ChainBlockHashes(prompt.tokens, routing_block_size_, routing_salt_);
}

ReplicaLoadView FleetRouter::LoadOf(int replica) const {
  const Engine& engine = *replicas_[static_cast<size_t>(replica)];
  ReplicaLoadView load;
  load.waiting = engine.num_waiting();
  load.running = engine.num_running();
  // GetMemoryStats is const on KvManager; Engine only exposes a mutable accessor.
  const KvManager::MemoryStats stats =
      const_cast<Engine&>(engine).kv().GetMemoryStats();
  load.occupancy = stats.pool_bytes > 0
                       ? static_cast<double>(stats.used_bytes) / static_cast<double>(stats.pool_bytes)
                       : 0.0;
  load.draining = engine.elastic_draining();
  return load;
}

bool FleetRouter::IsSaturated(int replica) const {
  return Saturated(LoadOf(replica), config_.spill_queue_depth, config_.spill_occupancy);
}

RouteDecision FleetRouter::Route(const Request& request) {
  std::vector<ReplicaLoadView> loads(static_cast<size_t>(num_replicas()));
  bool any_routable = false;
  for (int i = 0; i < num_replicas(); ++i) {
    loads[static_cast<size_t>(i)] = LoadOf(i);
    loads[static_cast<size_t>(i)].alive =
        supervisor_.alive(i) && !supervisor_.stalled(i, fleet_steps_);
    any_routable = any_routable || loads[static_cast<size_t>(i)].alive;
  }
  if (!any_routable) {
    // Every live replica is mid-stall: fall back to liveness alone (a stalled replica queues
    // the request and serves it when the stall expires; a dead one never would).
    for (int i = 0; i < num_replicas(); ++i) {
      loads[static_cast<size_t>(i)].alive = supervisor_.alive(i);
    }
  }
  std::vector<int64_t> affinity(static_cast<size_t>(num_replicas()), 0);
  if (config_.policy == RoutePolicy::kPrefixAffinity && routing_group_ >= 0) {
    const std::vector<BlockHash> chain = RoutingChain(request.prompt);
    for (int i = 0; i < num_replicas(); ++i) {
      affinity[static_cast<size_t>(i)] = index_->ResidentPrefixBlocks(i, chain);
    }
  }
  const RouteDecision decision =
      DecideRoute(config_.policy, config_.spill_queue_depth, config_.spill_occupancy, loads,
                  affinity, rr_cursor_);
  if (config_.policy == RoutePolicy::kRoundRobin) {
    ++rr_cursor_;
  }
  return decision;
}

void FleetRouter::CountDecision(const RouteDecision& decision) {
  counters_.submitted += 1;
  switch (decision.reason) {
    case RouteDecision::Reason::kAffinity:
      counters_.routed_affinity += 1;
      break;
    case RouteDecision::Reason::kSpill:
      counters_.routed_spill += 1;
      break;
    case RouteDecision::Reason::kLeastLoaded:
      counters_.routed_least_loaded += 1;
      break;
    case RouteDecision::Reason::kRoundRobin:
      counters_.routed_round_robin += 1;
      break;
  }
  if (decision.all_saturated) {
    counters_.saturated_submits += 1;
  }
}

RouteDecision FleetRouter::Submit(Request request) {
  const RouteDecision decision = Route(request);
  CountDecision(decision);
  placement_[request.id] = decision.replica;
  replicas_[static_cast<size_t>(decision.replica)]->Submit(std::move(request));
  return decision;
}

void FleetRouter::ResubmitRevived(Request request) {
  // Routes like a fresh submit but books a re-route, not a client submit: `submitted` and
  // the routed_* tallies count client intent only, keeping the conservation ledger
  // Σ finished records == submitted + rerouted.
  const RouteDecision decision = Route(request);
  counters_.rerouted += 1;
  placement_[request.id] = decision.replica;
  replicas_[static_cast<size_t>(decision.replica)]->Submit(std::move(request));
}

void FleetRouter::KillReplica(int replica) {
  JENGA_CHECK(supervisor_.alive(replica)) << "replica " << replica << " is already dead";
  JENGA_CHECK_GT(supervisor_.num_alive(), 1) << "cannot kill the last live replica";
  counters_.replica_deaths += 1;
  supervisor_.MarkDead(replica);
  Engine& dead = *replicas_[static_cast<size_t>(replica)];
  // Stop feeding the cluster index, then drop the dead replica's summary: it must stop
  // attracting affinity immediately, and the cancels below must not churn the index.
  dead.kv().allocator_mutable().SetResidencySink(nullptr);
  index_->PurgeReplica(replica);
  // Harvest in scheduler order (running queue first, then waiting): cancel off the dead
  // engine with full reclamation — the dead allocator still audits clean — and re-submit
  // each request to a survivor, recomputing from the prompt.
  for (const RequestId id : dead.ActiveRequests()) {
    Request revived = ReplicaSupervisor::ReviveForReroute(dead.request(id));
    JENGA_CHECK(dead.CancelRequest(id));
    counters_.death_cancels += 1;
    ResubmitRevived(std::move(revived));
  }
}

void FleetRouter::StallReplica(int replica, int64_t steps) {
  JENGA_CHECK(supervisor_.alive(replica)) << "cannot stall dead replica " << replica;
  JENGA_CHECK_GT(steps, 0);
  counters_.replica_stalls += 1;
  supervisor_.MarkStalled(replica, fleet_steps_ + steps);
}

void FleetRouter::ConsultFleetFaults() {
  // One consult pass per fleet step, replica-index order: a (plan, seed) pair fully
  // determines which step kills or stalls which replica. A death fire on the last live
  // replica is suppressed (counted, not applied); a stalled replica skips its stall consult
  // so repeated fires don't stack.
  for (int i = 0; i < num_replicas(); ++i) {
    if (!supervisor_.alive(i)) {
      continue;
    }
    if (fleet_fault_->Fire(FaultSite::kReplicaDeath)) {
      if (supervisor_.num_alive() > 1) {
        KillReplica(i);
        continue;
      }
      counters_.death_fires_ignored += 1;
    }
    if (!supervisor_.stalled(i, fleet_steps_) && fleet_fault_->Fire(FaultSite::kReplicaStall)) {
      StallReplica(i, config_.stall_steps);
    }
  }
}

StatusOr<int> FleetRouter::TrySubmit(Request request) {
  bool all_saturated = true;
  for (int i = 0; i < num_replicas(); ++i) {
    if (!supervisor_.alive(i)) {
      continue;
    }
    if (!IsSaturated(i)) {
      all_saturated = false;
      break;
    }
  }
  if (all_saturated) {
    counters_.backpressure_rejections += 1;
    return Status::ResourceExhausted("all " + std::to_string(num_replicas()) +
                                     " replicas saturated");
  }
  return Submit(std::move(request)).replica;
}

bool FleetRouter::StepOnce() {
  if (fleet_fault_ != nullptr) {
    ConsultFleetFaults();
  }
  bool any = false;
  for (int i = 0; i < num_replicas(); ++i) {
    if (!supervisor_.alive(i)) {
      continue;
    }
    Engine& engine = *replicas_[static_cast<size_t>(i)];
    if (supervisor_.stalled(i, fleet_steps_)) {
      // Frozen, not dead: its pending work counts as fleet work so run loops wait the
      // stall out instead of declaring the fleet idle.
      any = any || engine.num_waiting() + engine.num_running() > 0;
      continue;
    }
    any = engine.StepOnce() || any;
  }
  fleet_steps_ += 1;
  return any;
}

void FleetRouter::RunToCompletion(int64_t max_steps) {
  for (int64_t step = 0; step < max_steps; ++step) {
    if (!StepOnce()) {
      return;
    }
  }
  JENGA_CHECK(false) << "FleetRouter::RunToCompletion did not converge in " << max_steps
                     << " steps";
}

void FleetRouter::RunTimedTrace(std::vector<Request> requests, int64_t max_steps) {
  std::stable_sort(requests.begin(), requests.end(), [](const Request& a, const Request& b) {
    return a.arrival_time < b.arrival_time;
  });
  size_t next = 0;
  for (int64_t step = 0; step < max_steps; ++step) {
    const double clock = ClusterClock();
    while (next < requests.size() && requests[next].arrival_time <= clock) {
      Submit(std::move(requests[next]));
      ++next;
    }
    if (!StepOnce()) {
      if (next >= requests.size()) {
        return;
      }
      // Fleet idle with the next arrival in the future: jump to it (the chosen replica's
      // engine fast-forwards its own clock on the next step).
      Submit(std::move(requests[next]));
      ++next;
    }
  }
  JENGA_CHECK(false) << "FleetRouter::RunTimedTrace did not converge in " << max_steps
                     << " steps";
}

bool FleetRouter::CancelRequest(RequestId id) {
  const auto it = placement_.find(id);
  if (it == placement_.end()) {
    return false;
  }
  const bool cancelled = replicas_[static_cast<size_t>(it->second)]->CancelRequest(id);
  if (cancelled) {
    counters_.cancelled += 1;
  }
  return cancelled;
}

double FleetRouter::ClusterClock() const {
  double clock = 0.0;
  for (const auto& replica : replicas_) {
    clock = std::max(clock, replica->now());
  }
  return clock;
}

int FleetRouter::PlacementOf(RequestId id) const {
  const auto it = placement_.find(id);
  return it == placement_.end() ? -1 : it->second;
}

}  // namespace jenga
