// Table 1: the model/dataset/GPU inventory of the evaluation, plus the derived KV-group
// decomposition (what Jenga's allocator actually consumes) for every model.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/model/kv_spec.h"
#include "src/model/model_zoo.h"

namespace jenga {
namespace {

struct Table1Row {
  const char* model;
  const char* dataset;
  const char* h100;
  const char* l4;
};

void Run() {
  PrintHeader("Table 1: Model and dataset (* = FP8 quantization)");
  PrintRow({{26, "Model"}, {12, "Dataset"}, {10, "H100"}, {10, "L4"}});
  PrintRule();
  const Table1Row rows[] = {
      {"Llama 3.2 Vision (mllama)", "MMMU-pro", "11B", "11B*"},
      {"Gemma-2", "arXiv-QA", "27B", "9B"},
      {"Ministral", "arXiv-QA", "8B", "8B*"},
      {"Jamba", "MMLU-pro", "52B*", "OOM"},
      {"Llama (standard)", "MMLU-pro", "70B*", "8B"},
      {"Character.ai style", "MMLU-pro", "70B*", "8B"},
      {"PyramidKV", "MMLU-pro", "70B*", "8B"},
  };
  for (const Table1Row& row : rows) {
    PrintRow({{26, row.model}, {12, row.dataset}, {10, row.h100}, {10, row.l4}});
  }

  PrintHeader("Derived KV-group decomposition (tokens_per_page = 16)");
  PrintRow({{24, "Model"},
            {22, "Group"},
            {8, "Layers"},
            {14, "Page bytes"},
            {14, "LCM page"},
            {10, "LCM/min"}});
  PrintRule();
  for (const ModelConfig& model : AllZooModels()) {
    const KvSpec spec = BuildKvSpec(model, KvSpecOptions{});
    int64_t min_page = spec.groups[0].page_bytes;
    for (const KvGroupSpec& group : spec.groups) {
      min_page = std::min(min_page, group.page_bytes);
    }
    bool first = true;
    for (const KvGroupSpec& group : spec.groups) {
      PrintRow({{24, first ? model.name : ""},
                {22, group.name},
                {8, FmtI(group.num_layers)},
                {14, FmtI(group.page_bytes)},
                {14, first ? FmtI(spec.LcmPageBytes()) : ""},
                {10, first ? Fmt("%.0fx", static_cast<double>(spec.LcmPageBytes()) /
                                              static_cast<double>(min_page))
                           : ""}});
      first = false;
    }
  }
  std::printf("\nNote: Jamba's 84x ratio is the paper's reported worst case across vLLM models.\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
