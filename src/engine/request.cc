#include "src/engine/request.h"

#include "src/common/check.h"

namespace jenga {

int64_t Prompt::CountImageTokens() const {
  if (kinds.empty()) {
    return 0;
  }
  int64_t count = 0;
  for (TokenKind k : kinds) {
    if (k == TokenKind::kImage) {
      ++count;
    }
  }
  return count;
}

void Request::Prepare() {
  JENGA_CHECK_GT(output_len, 0);
  JENGA_CHECK_GT(prompt.size(), 0);
  if (!prompt.kinds.empty()) {
    JENGA_CHECK_EQ(prompt.kinds.size(), prompt.tokens.size());
  }
  all_tokens = prompt.tokens;
  all_kinds.assign(static_cast<size_t>(prompt.size()), TokenKind::kText);
  if (!prompt.kinds.empty()) {
    all_kinds = prompt.kinds;
  }
  image_prefix.assign(static_cast<size_t>(prompt.size()) + 1, 0);
  for (int64_t i = 0; i < prompt.size(); ++i) {
    image_prefix[static_cast<size_t>(i) + 1] =
        image_prefix[static_cast<size_t>(i)] +
        (all_kinds[static_cast<size_t>(i)] == TokenKind::kImage ? 1 : 0);
  }
}

void Request::AppendGenerated(int32_t token) {
  all_tokens.push_back(token);
  all_kinds.push_back(TokenKind::kText);
  image_prefix.push_back(image_prefix.back());
  num_generated += 1;
}

Request MakeRequest(RequestId id, Prompt prompt, int64_t output_len, double arrival_time) {
  Request request;
  request.id = id;
  request.prompt = std::move(prompt);
  request.output_len = output_len;
  request.arrival_time = arrival_time;
  request.Prepare();
  return request;
}

}  // namespace jenga
