# Empty dependencies file for jenga_workload.
# This may be replaced when dependencies are built.
