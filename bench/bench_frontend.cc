// Concurrent-frontend scaling: closed-loop producer threads (1/2/4/8) with 200µs client
// think time submitting against a live ServingFrontend, reporting sustained completion
// throughput and submit→first-token latency. One closed-loop client is latency-bound (the
// engine idles during every think interval); added producers overlap their think times and
// keep requests live for continuous batching, so throughput scales until the engine thread
// saturates — the engine core stays single-threaded (DESIGN.md §9). Also compares the
// sharded (alloc_shards=4) allocator hot path at the highest producer count.
//
// Flags:
//   --quick           fewer requests per producer (CI-friendly)
//   --requests <n>    requests per producer (default 48, quick 16)

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "bench/frontend_bench.h"

namespace jenga {
namespace {

int Run(int per_producer) {
  PrintHeader("bench_frontend: closed-loop producer scaling (prompt 256, output 8)");
  PrintRow({{12, "producers"},
            {10, "shards"},
            {12, "requests"},
            {12, "wall"},
            {14, "req/s"},
            {12, "speedup"},
            {22, "first-token p50/p95"}});
  PrintRule();

  double base_rps = 0.0;
  double rps_4p = 0.0;
  for (const int producers : {1, 2, 4, 8}) {
    const FrontendLoadResult r = RunClosedLoop(producers, per_producer);
    if (producers == 1) {
      base_rps = r.requests_per_s;
    }
    if (producers == 4) {
      rps_4p = r.requests_per_s;
    }
    PrintRow({{12, FmtI(producers)},
              {10, "1"},
              {12, FmtI(r.completed)},
              {12, Fmt("%.3fs", r.wall_seconds)},
              {14, Fmt("%.1f", r.requests_per_s)},
              {12, Fmt("%.2fx", base_rps > 0 ? r.requests_per_s / base_rps : 0.0)},
              {22, Fmt("%.2f/", r.first_token_p50_ms) + Fmt("%.2fms", r.first_token_p95_ms)}});
  }
  {
    const FrontendLoadResult r = RunClosedLoop(8, per_producer, /*alloc_shards=*/4);
    PrintRow({{12, "8"},
              {10, "4"},
              {12, FmtI(r.completed)},
              {12, Fmt("%.3fs", r.wall_seconds)},
              {14, Fmt("%.1f", r.requests_per_s)},
              {12, Fmt("%.2fx", base_rps > 0 ? r.requests_per_s / base_rps : 0.0)},
              {22, Fmt("%.2f/", r.first_token_p50_ms) + Fmt("%.2fms", r.first_token_p95_ms)}});
  }

  const double scaling = base_rps > 0 ? rps_4p / base_rps : 0.0;
  std::printf("\nscaling 4p/1p: %.2fx (target >= 2.0x)\n", scaling);
  return scaling >= 2.0 ? 0 : 1;
}

}  // namespace
}  // namespace jenga

int main(int argc, char** argv) {
  int per_producer = 48;
  bool explicit_requests = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      if (!explicit_requests) {
        per_producer = 16;
      }
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      per_producer = std::atoi(argv[++i]);
      explicit_requests = true;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--requests n]\n", argv[0]);
      return 2;
    }
  }
  return jenga::Run(per_producer);
}
