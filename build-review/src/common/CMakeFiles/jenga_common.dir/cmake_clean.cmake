file(REMOVE_RECURSE
  "CMakeFiles/jenga_common.dir/random.cc.o"
  "CMakeFiles/jenga_common.dir/random.cc.o.d"
  "CMakeFiles/jenga_common.dir/stats.cc.o"
  "CMakeFiles/jenga_common.dir/stats.cc.o.d"
  "libjenga_common.a"
  "libjenga_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jenga_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
