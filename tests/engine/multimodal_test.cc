// Multimodal-specific manager and engine behaviour: text-token scope for cross-attention
// models (§3.2's T·32 + I·8 ideal), cross-request vision reuse, and the Fig.-18 encoder
// scheduling modes.

#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/engine/kv_manager.h"
#include "src/model/model_zoo.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

constexpr int kBs = 16;

std::unique_ptr<KvManager> Manager(const ModelConfig& model, int64_t pool, bool jenga,
                                   bool caching) {
  KvManager::Options options;
  options.tokens_per_page = kBs;
  options.enable_prefix_caching = caching;
  options.jenga = jenga;
  options.tokens_per_image = model.vision.tokens_per_image;
  const KvSpec alloc = jenga ? MakeJengaSpec(model, kBs, model.vision.present)
                             : MakeHomogeneousSpec(model, kBs);
  const KvSpec accounting = MakeJengaSpec(model, kBs, jenga && model.vision.present);
  return std::make_unique<KvManager>(alloc, accounting, pool, options);
}

void Compute(KvManager& kv, Request& r, int64_t n, Tick now) {
  ASSERT_TRUE(kv.AllocateForTokens(r, n, now));
  r.num_computed_tokens += n;
  kv.OnStepComputed(r, now);
}

TEST(MultimodalKv, SelfAttentionCoversTextTokensOnly) {
  // TinyVisionModel: 2 self-attention (text scope) + 2 cross-attention layers, 8 tok/image.
  const ModelConfig model = TinyVisionModel();
  auto kv = Manager(model, 1 << 22, /*jenga=*/true, /*caching=*/false);
  // 16 text + 4 images × 8 + 16 text = 64 tokens, of which 32 text.
  Request r = MakeRequest(1, MixedPrompt(16, 4, 8, 16), 4, 0.0);
  kv->OnAdmit(r, 1);
  Compute(*kv, r, 64, 1);
  int full = -1;
  for (int g = 0; g < static_cast<int>(kv->alloc_spec().groups.size()); ++g) {
    if (kv->alloc_spec().groups[g].kind == GroupKind::kFullAttention) {
      full = g;
    }
  }
  ASSERT_GE(full, 0);
  EXPECT_EQ(kv->alloc_spec().groups[static_cast<size_t>(full)].scope, GroupScope::kTextTokens);
  // 32 text tokens → 2 blocks, NOT 4: image tokens do not enter the decoder sequence.
  EXPECT_EQ(kv->allocator().group(full).GetStats().used_pages, 2);
}

TEST(MultimodalKv, MllamaNeededBytesMatchPaperIdeal) {
  // §3.2: ideal memory = T·32·E + I·8·E for 43 text + 6193 image tokens.
  const ModelConfig model = Llama32_11B_Vision();
  auto kv = Manager(model, 64LL << 30, true, /*caching=*/false);
  Prompt prompt;
  for (int i = 0; i < 43; ++i) {
    prompt.tokens.push_back(i);
    prompt.kinds.push_back(TokenKind::kText);
  }
  for (int i = 0; i < 6193; ++i) {
    prompt.tokens.push_back(100 + i);
    prompt.kinds.push_back(TokenKind::kImage);
  }
  Request r = MakeRequest(1, prompt, 2, 0.0);
  kv->OnAdmit(r, 1);
  Compute(*kv, r, r.prompt_len(), 1);
  const int64_t e = 4096;  // Per-layer per-token KV bytes.
  // All image embeddings consumed (prompt fully computed) → vision needed is 0.
  EXPECT_EQ(kv->NeededBytesFor(r), 43 * 32 * e + 6193 * 8 * e);
}

TEST(MultimodalKv, VisionEmbeddingsReusedAcrossRequests) {
  // Two requests with the same images: the second hits the cached cross-attention KV and
  // vision embeddings (block-aligned image runs).
  const ModelConfig model = TinyVisionModel();
  auto kv = Manager(model, 1 << 22, true, /*caching=*/true);
  // 16 text + 2 images × 8 + 16 text: image tokens occupy [16, 32) — block-aligned.
  Request a = MakeRequest(1, MixedPrompt(16, 2, 8, 16), 4, 0.0);
  kv->OnAdmit(a, 1);
  Compute(*kv, a, 48, 1);
  kv->Release(a, 2);
  Request b = MakeRequest(2, MixedPrompt(16, 2, 8, 16), 4, 0.0);
  kv->OnAdmit(b, 3);
  // 48 tokens → boundary capped below the prompt: 32 tokens hit.
  EXPECT_EQ(b.cached_prefix_tokens, 32);
  kv->CheckConsistency();
}

TEST(MultimodalKv, HomogeneousBaselineChargesAllTokensAllLayers) {
  const ModelConfig model = TinyVisionModel();
  auto kv = Manager(model, 1 << 22, /*jenga=*/false, false);
  Request r = MakeRequest(1, MixedPrompt(16, 4, 8, 16), 4, 0.0);
  kv->OnAdmit(r, 1);
  Compute(*kv, r, 64, 1);
  // (T+I) tokens × all 4 layers: 64 tokens → 4 blocks of the degenerate group.
  EXPECT_EQ(kv->allocator().group(0).GetStats().used_pages, 4);
  const auto stats = kv->GetMemoryStats();
  // Needed (true architecture): text 32×2 layers + image 32×2 layers, at 256 B each.
  EXPECT_EQ(stats.needed_bytes, 32LL * 2 * 256 + 32LL * 2 * 256);
  EXPECT_GT(stats.wasted_bytes, 0);
}

TEST(MultimodalEngine, EncoderOncePerAdmissionEvenAcrossChunks) {
  EngineConfig config;
  config.model = TinyVisionModel();
  config.gpu = TestGpu();
  config.jenga = true;
  config.vision_cache = true;
  config.pool_bytes_override = 1 << 24;
  config.max_batched_tokens_override = 8;  // Many chunks per request.
  Engine engine(std::move(config));
  engine.Submit(MakeRequest(0, MixedPrompt(16, 4, 8, 16), 4, 0.0));
  engine.Submit(MakeRequest(1, MixedPrompt(16, 4, 8, 16), 4, 0.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().vision_encoder_runs, 2);  // Exactly one per request.
}

TEST(MultimodalEngine, TextOnlyRequestNeverEncodes) {
  EngineConfig config;
  config.model = TinyVisionModel();
  config.gpu = TestGpu();
  config.jenga = true;
  config.pool_bytes_override = 1 << 24;
  Engine engine(std::move(config));
  engine.Submit(MakeRequest(0, TextPrompt(64), 4, 0.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().vision_encoder_runs, 0);
}

}  // namespace
}  // namespace jenga
