// Engine-level elastic primitives (ISSUE 9 tentpole): audited pool grow/shrink, the LCM
// repartition protocol (quiesce → rebuild → commit/rollback), and the spec-decode split
// shift — each exercised with and without its fault site armed, with the AllocatorAuditor
// green after every transition and the EngineMetrics resize ledger balancing exactly:
//
//   pool_grow_attempts   == committed grows   + pool_grow_rollbacks
//   pool_shrink_attempts == committed shrinks + pool_shrink_rollbacks
//   repartition_attempts == repartitions      + repartition_rollbacks
//   pool_grow_pages − pool_shrink_pages == current pool pages − initial pool pages
//                                          (per pool; reset by a committed repartition)

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "src/audit/allocator_auditor.h"
#include "src/engine/engine.h"
#include "src/engine/spec_decode.h"
#include "src/fault/fault_injector.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

EngineConfig TinyEngineConfig(int64_t pool_bytes = 1 << 20) {
  EngineConfig config;
  config.model = TinyFullModel();
  config.gpu = TestGpu();
  config.pool_bytes_override = pool_bytes;
  config.max_num_seqs_override = 4;
  return config;
}

EngineConfig WithFaultPlan(EngineConfig config, const char* plan, uint64_t seed = 0xE1A) {
  JENGA_CHECK(FaultPlan::Parse(plan, &config.fault.plan).ok()) << plan;
  config.fault.seed = seed;
  return config;
}

void ExpectAuditGreen(AllocatorAuditor& auditor, const char* where) {
  const auto violations = auditor.Audit();
  ASSERT_TRUE(violations.empty()) << where << ": " << violations.front();
}

// --- Engine grow/shrink ---

TEST(ElasticResize, GrowThenShrinkRoundTripsAndBalancesTheLedger) {
  Engine engine(TinyEngineConfig());
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&engine.kv().allocator_mutable());
  const int32_t initial = engine.PoolPages();

  EXPECT_EQ(engine.GrowKvPool(3), 3);
  EXPECT_EQ(engine.PoolPages(), initial + 3);
  ExpectAuditGreen(auditor, "after grow");

  EXPECT_EQ(engine.ShrinkKvPool(3), 3);
  EXPECT_EQ(engine.PoolPages(), initial);
  ExpectAuditGreen(auditor, "after shrink");

  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.pool_grow_attempts, 1);
  EXPECT_EQ(m.pool_shrink_attempts, 1);
  EXPECT_EQ(m.pool_grow_pages, 3);
  EXPECT_EQ(m.pool_shrink_pages, 3);
  EXPECT_EQ(m.pool_grow_rollbacks, 0);
  EXPECT_EQ(m.pool_shrink_rollbacks, 0);
  EXPECT_EQ(m.pool_grow_pages - m.pool_shrink_pages, engine.PoolPages() - initial);
}

TEST(ElasticResize, ShrinkDrainsOnlyTheUnpinnedTail) {
  // A busy engine pins its low pages: shrinking by more than the free tail removes only what
  // actually drained, and the ledger records the partial result, not the ask.
  Engine engine(TinyEngineConfig(/*pool_bytes=*/1 << 21));
  engine.Submit(MakeRequest(1, TextPrompt(64), /*output_len=*/64, 0.0));
  for (int i = 0; i < 4; ++i) {
    engine.StepOnce();
  }
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&engine.kv().allocator_mutable());
  const int32_t initial = engine.PoolPages();
  const int32_t removed = engine.ShrinkKvPool(initial);  // Ask for the whole pool.
  EXPECT_GT(removed, 0);
  EXPECT_LT(removed, initial);  // The live request's pages stayed.
  EXPECT_EQ(engine.PoolPages(), initial - removed);
  EXPECT_EQ(engine.metrics().pool_shrink_pages, removed);
  ExpectAuditGreen(auditor, "after partial shrink");
  // The drained pool only holds the request's pinned prefix; give back enough pages for the
  // remaining decode (64 prompt + 64 output = 8 pages total) so the run can converge.
  EXPECT_EQ(engine.GrowKvPool(4), 4);
  engine.RunToCompletion();
  EXPECT_FALSE(engine.request(1).failed);
  EXPECT_EQ(engine.metrics().pool_grow_pages - engine.metrics().pool_shrink_pages,
            engine.PoolPages() - initial);
  ExpectAuditGreen(auditor, "after run");
}

TEST(ElasticResize, GrowRollbackUnderFaultLeavesThePoolUntouched) {
  Engine engine(WithFaultPlan(TinyEngineConfig(), "pool_grow:every=1"));
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&engine.kv().allocator_mutable());
  const int32_t initial = engine.PoolPages();
  EXPECT_EQ(engine.GrowKvPool(4), 0);
  EXPECT_EQ(engine.PoolPages(), initial);
  EXPECT_EQ(engine.metrics().pool_grow_attempts, 1);
  EXPECT_EQ(engine.metrics().pool_grow_rollbacks, 1);
  EXPECT_EQ(engine.metrics().pool_grow_pages, 0);
  EXPECT_GT(engine.metrics().faults_injected, 0);
  ExpectAuditGreen(auditor, "after grow rollback");
}

TEST(ElasticResize, ShrinkRollbackUnderFaultLeavesThePoolUntouched) {
  Engine engine(WithFaultPlan(TinyEngineConfig(), "pool_shrink_drain:every=1"));
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&engine.kv().allocator_mutable());
  const int32_t initial = engine.PoolPages();
  EXPECT_EQ(engine.ShrinkKvPool(4), 0);
  EXPECT_EQ(engine.PoolPages(), initial);
  EXPECT_EQ(engine.metrics().pool_shrink_attempts, 1);
  EXPECT_EQ(engine.metrics().pool_shrink_rollbacks, 1);
  EXPECT_EQ(engine.metrics().pool_shrink_pages, 0);
  ExpectAuditGreen(auditor, "after shrink rollback");
}

// --- Engine repartition ---

TEST(ElasticResize, RepartitionCommitSwapsTheModelWithoutAbortingRequests) {
  Engine engine(TinyEngineConfig(/*pool_bytes=*/1 << 21));
  for (int i = 0; i < 3; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(64, 100 + 64 * i), /*output_len=*/32, 0.0));
  }
  for (int i = 0; i < 6; ++i) {
    engine.StepOnce();  // Get requests mid-flight before the swap.
  }
  ASSERT_GT(engine.num_running(), 0);

  ASSERT_TRUE(engine.RepartitionKvPool(TinySlidingModel(), /*new_pool_bytes=*/1 << 21));
  EXPECT_EQ(engine.config().model.name, "tiny-sliding");
  EXPECT_EQ(engine.metrics().repartition_attempts, 1);
  EXPECT_EQ(engine.metrics().repartitions, 1);
  EXPECT_EQ(engine.metrics().repartition_rollbacks, 0);
  // Quiesce preempted every runner; nothing was aborted.
  EXPECT_EQ(engine.num_running(), 0);
  EXPECT_EQ(engine.num_waiting(), 3);

  AllocatorAuditor auditor;  // Attach after the swap: the old allocator is gone.
  auditor.AttachAllocator(&engine.kv().allocator_mutable());
  engine.RunToCompletion();
  ExpectAuditGreen(auditor, "after post-repartition run");
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(engine.request(i).failed) << "request " << i;
    EXPECT_FALSE(engine.request(i).cancelled) << "request " << i;
  }
}

TEST(ElasticResize, RepartitionRollbackKeepsTheOldLayoutLive) {
  Engine engine(WithFaultPlan(TinyEngineConfig(/*pool_bytes=*/1 << 21),
                              "repartition_commit:every=1"));
  for (int i = 0; i < 2; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(48, 100 + 48 * i), /*output_len=*/16, 0.0));
  }
  for (int i = 0; i < 4; ++i) {
    engine.StepOnce();
  }
  AllocatorAuditor auditor;
  auditor.AttachAllocator(&engine.kv().allocator_mutable());
  const int32_t pages_before = engine.PoolPages();

  EXPECT_FALSE(engine.RepartitionKvPool(TinySlidingModel()));
  EXPECT_EQ(engine.config().model.name, "tiny-full");
  EXPECT_EQ(engine.PoolPages(), pages_before);
  EXPECT_EQ(engine.metrics().repartition_attempts, 1);
  EXPECT_EQ(engine.metrics().repartitions, 0);
  EXPECT_EQ(engine.metrics().repartition_rollbacks, 1);
  ExpectAuditGreen(auditor, "after repartition rollback");

  // The quiesced requests re-admit against the old layout and finish cleanly.
  engine.RunToCompletion();
  ExpectAuditGreen(auditor, "after run");
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(engine.request(i).failed) << "request " << i;
  }
}

TEST(ElasticResize, RepartitionWithOffloadFlushesHostStateAndReattaches) {
  EngineConfig config = TinyEngineConfig(/*pool_bytes=*/1 << 21);
  config.offload.enabled = true;
  config.offload.host_pool_bytes = 1 << 24;
  Engine engine(std::move(config));
  for (int i = 0; i < 3; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(64, 100 + 64 * i), /*output_len=*/32, 0.0));
  }
  for (int i = 0; i < 8; ++i) {
    engine.StepOnce();
  }
  ASSERT_TRUE(engine.RepartitionKvPool(TinyFullModel(), /*new_pool_bytes=*/1 << 21));
  // Host-tier state keyed by the old layout was flushed wholesale at commit.
  ASSERT_NE(engine.swap(), nullptr);
  EXPECT_EQ(engine.swap()->host().used_bytes(), 0);
  EXPECT_EQ(engine.swap()->host().num_sets(), 0);
  EXPECT_FALSE(engine.swap()->degraded());

  AllocatorAuditor auditor;
  auditor.AttachAllocator(&engine.kv().allocator_mutable());
  auditor.AttachSwapManager(engine.swap_mutable());
  engine.RunToCompletion();
  ExpectAuditGreen(auditor, "offload run after repartition");
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(engine.request(i).failed) << "request " << i;
  }
}

// --- Spec-decode split shift ---

SpecDecodeConfig ManualSpecConfig(int64_t pool_bytes, double draft_fraction = -1.0) {
  SpecDecodeConfig config;
  config.target = TinyFullModel();
  config.draft = TinyDraftModel();
  config.gpu = TestGpu();
  config.strategy = SpecStrategy::kVllmManual;
  config.pool_bytes_override = pool_bytes;
  config.max_num_seqs_override = 4;
  config.manual_draft_fraction = draft_fraction;
  return config;
}

// tiny-full homogeneous pages are 16 KiB (16 tokens × 1 KiB/token), tiny-draft pages 4 KiB.
constexpr int64_t kTargetPage = 16384;
constexpr int64_t kDraftPage = 4096;

TEST(ElasticResize, ShiftSplitMovesWholePagesTargetToDraft) {
  SpecDecodeEngine engine(ManualSpecConfig(/*pool_bytes=*/1 << 21));
  ASSERT_EQ(engine.num_managers(), 2);
  ASSERT_EQ(engine.manager(0).allocator().lcm().large_page_bytes(), kTargetPage);
  ASSERT_EQ(engine.manager(1).allocator().lcm().large_page_bytes(), kDraftPage);
  const int32_t target_pages = engine.manager(0).allocator().lcm().num_pages();
  const int32_t draft_pages = engine.manager(1).allocator().lcm().num_pages();

  // One 16 KiB target page → four 4 KiB draft pages, no remainder.
  EXPECT_EQ(engine.ShiftSplit(0, 1, kTargetPage), 4 * kDraftPage);
  EXPECT_EQ(engine.manager(0).allocator().lcm().num_pages(), target_pages - 1);
  EXPECT_EQ(engine.manager(1).allocator().lcm().num_pages(), draft_pages + 4);
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.pool_shrink_attempts, 1);
  EXPECT_EQ(m.pool_grow_attempts, 1);
  EXPECT_EQ(m.pool_shrink_pages, 1);
  EXPECT_EQ(m.pool_grow_pages, 4);
}

TEST(ElasticResize, ShiftSplitReturnsTheSubPageRemainderToTheDonor) {
  SpecDecodeEngine engine(ManualSpecConfig(/*pool_bytes=*/1 << 21));
  const int32_t target_pages = engine.manager(0).allocator().lcm().num_pages();
  const int32_t draft_pages = engine.manager(1).allocator().lcm().num_pages();

  // Five 4 KiB draft pages free 20 KiB → one 16 KiB target page; the 4 KiB remainder goes
  // back to the donor, so the net donor loss is exactly the bytes the recipient gained.
  EXPECT_EQ(engine.ShiftSplit(1, 0, 5 * kDraftPage), kTargetPage);
  EXPECT_EQ(engine.manager(1).allocator().lcm().num_pages(), draft_pages - 4);
  EXPECT_EQ(engine.manager(0).allocator().lcm().num_pages(), target_pages + 1);
  const EngineMetrics& m = engine.metrics();
  EXPECT_EQ(m.pool_shrink_pages, 4);  // 5 drained − 1 remainder re-grown.
  EXPECT_EQ(m.pool_grow_pages, 1);
}

TEST(ElasticResize, ShiftSplitSmallerThanOneRecipientPageIsRestoredInFull) {
  SpecDecodeEngine engine(ManualSpecConfig(/*pool_bytes=*/1 << 21));
  const int32_t target_pages = engine.manager(0).allocator().lcm().num_pages();
  const int32_t draft_pages = engine.manager(1).allocator().lcm().num_pages();
  // One draft page (4 KiB) cannot make a 16 KiB target page: full restore, zero delta.
  EXPECT_EQ(engine.ShiftSplit(1, 0, kDraftPage), 0);
  EXPECT_EQ(engine.manager(0).allocator().lcm().num_pages(), target_pages);
  EXPECT_EQ(engine.manager(1).allocator().lcm().num_pages(), draft_pages);
  EXPECT_EQ(engine.metrics().pool_shrink_pages, 0);
  EXPECT_EQ(engine.metrics().pool_grow_pages, 0);
}

TEST(ElasticResize, ShiftSplitRollsBackOnEitherFaultSite) {
  for (const char* plan : {"pool_shrink_drain:every=1", "pool_grow:every=1"}) {
    SpecDecodeConfig config = ManualSpecConfig(/*pool_bytes=*/1 << 21);
    JENGA_CHECK(FaultPlan::Parse(plan, &config.fault.plan).ok()) << plan;
    config.fault.seed = 0xE1B;
    SpecDecodeEngine engine(std::move(config));
    const int32_t target_pages = engine.manager(0).allocator().lcm().num_pages();
    const int32_t draft_pages = engine.manager(1).allocator().lcm().num_pages();

    EXPECT_EQ(engine.ShiftSplit(0, 1, kTargetPage), 0) << plan;
    EXPECT_EQ(engine.manager(0).allocator().lcm().num_pages(), target_pages) << plan;
    EXPECT_EQ(engine.manager(1).allocator().lcm().num_pages(), draft_pages) << plan;
    const EngineMetrics& m = engine.metrics();
    EXPECT_EQ(m.pool_shrink_pages, 0) << plan;
    EXPECT_EQ(m.pool_grow_pages, 0) << plan;
    EXPECT_EQ(m.pool_shrink_rollbacks + m.pool_grow_rollbacks, 1) << plan;
  }
}

TEST(ElasticResize, ShiftSplitRefusesOutsideManualStrategy) {
  SpecDecodeConfig config = ManualSpecConfig(/*pool_bytes=*/1 << 21);
  config.strategy = SpecStrategy::kJenga;  // One shared manager: nothing to shift between.
  SpecDecodeEngine engine(std::move(config));
  EXPECT_EQ(engine.ShiftSplit(0, 1, kTargetPage), 0);
  EXPECT_EQ(engine.metrics().pool_shrink_attempts, 0);
  EXPECT_EQ(engine.metrics().pool_grow_attempts, 0);
}

TEST(ElasticResize, ManualDraftFractionOverridesTheSmartSpecSplit) {
  // SmartSpec splits ∝ per-token KV: tiny-full 1024 B/token vs tiny-draft 256 B/token → a
  // 20% draft share. An explicit 0.5 fraction must override that proportional split.
  SpecDecodeEngine smartspec(ManualSpecConfig(/*pool_bytes=*/1 << 21));
  SpecDecodeEngine even(ManualSpecConfig(/*pool_bytes=*/1 << 21, /*draft_fraction=*/0.5));
  const int64_t ss_draft = smartspec.manager(1).GetMemoryStats().pool_bytes;
  const int64_t even_draft = even.manager(1).GetMemoryStats().pool_bytes;
  EXPECT_GT(even_draft, ss_draft);
  const int64_t even_target = even.manager(0).GetMemoryStats().pool_bytes;
  // Equal split, modulo per-pool page rounding.
  EXPECT_NEAR(static_cast<double>(even_draft) / static_cast<double>(even_target), 1.0, 0.1);
}

}  // namespace
}  // namespace jenga
