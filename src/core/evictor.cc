#include "src/core/evictor.h"

#include "src/common/check.h"

namespace jenga {

void Evictor::Insert(SmallPageId page, Tick last_access, int64_t prefix_length) {
  const Key key{last_access, -prefix_length, page};
  const auto [it, inserted] = keys_.emplace(page, key);
  JENGA_CHECK(inserted) << "page " << page << " already in evictor";
  queue_.insert(key);
}

void Evictor::Remove(SmallPageId page) {
  const auto it = keys_.find(page);
  if (it == keys_.end()) {
    return;
  }
  queue_.erase(it->second);
  keys_.erase(it);
}

void Evictor::Rekey(SmallPageId page, Key new_key) {
  const auto it = keys_.find(page);
  if (it == keys_.end()) {
    return;
  }
  queue_.erase(it->second);
  it->second = new_key;
  queue_.insert(new_key);
}

void Evictor::UpdateLastAccess(SmallPageId page, Tick last_access) {
  const auto it = keys_.find(page);
  if (it == keys_.end()) {
    return;
  }
  Key key = it->second;
  key.last_access = last_access;
  Rekey(page, key);
}

void Evictor::SetPrefixLength(SmallPageId page, int64_t prefix_length) {
  const auto it = keys_.find(page);
  if (it == keys_.end()) {
    return;
  }
  Key key = it->second;
  key.neg_prefix_length = -prefix_length;
  Rekey(page, key);
}

std::optional<SmallPageId> Evictor::PopVictim() {
  if (queue_.empty()) {
    return std::nullopt;
  }
  const Key key = *queue_.begin();
  queue_.erase(queue_.begin());
  keys_.erase(key.page);
  return key.page;
}

std::optional<Tick> Evictor::PeekOldestAccess() const {
  if (queue_.empty()) {
    return std::nullopt;
  }
  return queue_.begin()->last_access;
}

}  // namespace jenga
