#include "src/engine/kv_manager.h"

#include <gtest/gtest.h>

#include "src/common/math_util.h"
#include "src/model/model_zoo.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

constexpr int kBs = 16;

KvManager::Options JengaOptions(bool caching = true, int tokens_per_image = 0) {
  KvManager::Options options;
  options.tokens_per_page = kBs;
  options.enable_prefix_caching = caching;
  options.jenga = true;
  options.tokens_per_image = tokens_per_image;
  return options;
}

KvManager::Options BaselineOptions(bool caching = true) {
  KvManager::Options options = JengaOptions(caching);
  options.jenga = false;
  return options;
}

std::unique_ptr<KvManager> MakeJengaManager(const ModelConfig& model, int64_t pool,
                                            bool caching = true) {
  const KvSpec spec = MakeJengaSpec(model, kBs, model.vision.present);
  return std::make_unique<KvManager>(spec, spec, pool,
                                     JengaOptions(caching, model.vision.tokens_per_image));
}

std::unique_ptr<KvManager> MakeBaselineManager(const ModelConfig& model, int64_t pool,
                                               bool caching = true) {
  return std::make_unique<KvManager>(MakeHomogeneousSpec(model, kBs),
                                     MakeJengaSpec(model, kBs, /*vision_cache=*/false), pool,
                                     BaselineOptions(caching));
}

// Drives a request through the manager as the engine would: allocate, advance, notify.
void ComputeTokens(KvManager& kv, Request& r, int64_t n, Tick now) {
  ASSERT_TRUE(kv.AllocateForTokens(r, n, now));
  r.num_computed_tokens += n;
  kv.OnStepComputed(r, now);
}

TEST(KvManagerSpecBuilders, HomogeneousSumsLayers) {
  const KvSpec spec = MakeHomogeneousSpec(TinyFullModel(), kBs);
  ASSERT_EQ(spec.groups.size(), 1u);
  EXPECT_EQ(spec.groups[0].BytesPerToken(), 4 * 256);
  EXPECT_EQ(spec.groups[0].page_bytes, kBs * 1024);
}

TEST(KvManagerSpecBuilders, HomogeneousOverride) {
  const KvSpec spec = MakeHomogeneousSpec(TinyFullModel(), kBs, /*bytes_per_token_override=*/4096);
  EXPECT_EQ(spec.groups[0].BytesPerToken(), 4096);
}

TEST(KvManagerSpecBuilders, MambaReservation) {
  EXPECT_EQ(StaticMambaReservationBytes(TinyMambaModel(), 10), 3 * 8192 * 10);
}

TEST(KvManager, AllocatesBlocksForPromptProgress) {
  const ModelConfig model = TinyFullModel();
  auto kv = MakeJengaManager(model, 1 << 22);
  Request r = MakeRequest(1, TextPrompt(100), 10, 0.0);
  kv->OnAdmit(r, 1);
  ComputeTokens(*kv, r, 100, 1);
  // 100 tokens → 7 blocks of 16 in the single full-attention group.
  EXPECT_EQ(kv->allocator().group(0).GetStats().used_pages, 7);
  kv->Release(r, 2);
  EXPECT_EQ(kv->allocator().group(0).GetStats().used_pages, 0);
  kv->CheckConsistency();
}

TEST(KvManager, PrefixHitOnIdenticalPrompt) {
  const ModelConfig model = TinyFullModel();
  auto kv = MakeJengaManager(model, 1 << 22);
  Request a = MakeRequest(1, TextPrompt(100), 4, 0.0);
  kv->OnAdmit(a, 1);
  EXPECT_EQ(a.cached_prefix_tokens, 0);
  ComputeTokens(*kv, a, 100, 1);
  kv->Release(a, 2);

  Request b = MakeRequest(2, TextPrompt(100), 4, 0.0);
  kv->OnAdmit(b, 3);
  // 100 tokens → 6 full blocks cacheable (the 7th is partial); hit = 96 tokens.
  EXPECT_EQ(b.cached_prefix_tokens, 96);
  EXPECT_EQ(b.num_computed_tokens, 96);
  EXPECT_EQ(kv->total_cache_hit_tokens(), 96);
  kv->CheckConsistency();
}

TEST(KvManager, FullBlockAlignedPromptHitsAllButOneBlock) {
  const ModelConfig model = TinyFullModel();
  auto kv = MakeJengaManager(model, 1 << 22);
  Request a = MakeRequest(1, TextPrompt(64), 4, 0.0);
  kv->OnAdmit(a, 1);
  ComputeTokens(*kv, a, 64, 1);
  kv->Release(a, 2);
  Request b = MakeRequest(2, TextPrompt(64), 4, 0.0);
  kv->OnAdmit(b, 3);
  // A full hit would leave nothing to compute; the manager caps at 48 of 64.
  EXPECT_EQ(b.cached_prefix_tokens, 48);
}

TEST(KvManager, NoHitWhenCachingDisabled) {
  const ModelConfig model = TinyFullModel();
  auto kv = MakeJengaManager(model, 1 << 22, /*caching=*/false);
  Request a = MakeRequest(1, TextPrompt(100), 4, 0.0);
  kv->OnAdmit(a, 1);
  ComputeTokens(*kv, a, 100, 1);
  kv->Release(a, 2);
  // With caching off, releasing returns all memory to the pool.
  EXPECT_EQ(kv->allocator().lcm().num_allocated(), 0);
  Request b = MakeRequest(2, TextPrompt(100), 4, 0.0);
  kv->OnAdmit(b, 3);
  EXPECT_EQ(b.cached_prefix_tokens, 0);
}

TEST(KvManager, SlidingWindowDropsOutOfWindowPages) {
  const ModelConfig model = TinySlidingModel(/*window=*/64);
  auto kv = MakeJengaManager(model, 1 << 22, /*caching=*/false);
  Request r = MakeRequest(1, TextPrompt(320), 4, 0.0);
  kv->OnAdmit(r, 1);
  ComputeTokens(*kv, r, 320, 1);
  // Full group: 20 blocks; sliding group: only the last 4 blocks (64 tokens) remain used.
  const KvSpec& spec = kv->alloc_spec();
  int full = -1;
  int sliding = -1;
  for (int g = 0; g < static_cast<int>(spec.groups.size()); ++g) {
    if (spec.groups[g].kind == GroupKind::kFullAttention) {
      full = g;
    }
    if (spec.groups[g].kind == GroupKind::kSlidingWindow) {
      sliding = g;
    }
  }
  ASSERT_GE(full, 0);
  ASSERT_GE(sliding, 0);
  EXPECT_EQ(kv->allocator().group(full).GetStats().used_pages, 20);
  EXPECT_EQ(kv->allocator().group(sliding).GetStats().used_pages, 4);
  kv->CheckConsistency();
}

TEST(KvManager, BaselineKeepsEverything) {
  const ModelConfig model = TinySlidingModel(64);
  auto kv = MakeBaselineManager(model, 1 << 22, /*caching=*/false);
  Request r = MakeRequest(1, TextPrompt(320), 4, 0.0);
  kv->OnAdmit(r, 1);
  ComputeTokens(*kv, r, 320, 1);
  EXPECT_EQ(kv->allocator().group(0).GetStats().used_pages, 20);
  // Fig. 16 accounting: the baseline wastes the out-of-window sliding KV.
  const auto stats = kv->GetMemoryStats();
  EXPECT_GT(stats.wasted_bytes, 0);
  // Needed = full layers × 320 + sliding layers × 64 tokens.
  EXPECT_EQ(stats.needed_bytes, 2LL * 256 * 320 + 2LL * 256 * 64);
  kv->CheckConsistency();
}

TEST(KvManager, JengaWasteIsNearZero) {
  const ModelConfig model = TinySlidingModel(64);
  auto kv = MakeJengaManager(model, 1 << 22, /*caching=*/false);
  Request r = MakeRequest(1, TextPrompt(320), 4, 0.0);
  kv->OnAdmit(r, 1);
  ComputeTokens(*kv, r, 320, 1);
  const auto stats = kv->GetMemoryStats();
  // Waste is bounded by partial blocks + unused smalls inside the requests' large pages.
  EXPECT_LT(static_cast<double>(stats.wasted_bytes),
            0.1 * static_cast<double>(stats.used_bytes));
  kv->CheckConsistency();
}

TEST(KvManager, SlidingWindowPrefixHitSurvivesPartialEviction) {
  // After the donor request, evict nothing: the successor must hit. The sliding group's
  // out-of-window pages were dropped (holes), yet the window blocks are cached, so the
  // sliding policy accepts the prefix and the full-attention group gates the hit.
  const ModelConfig model = TinySlidingModel(64);
  auto kv = MakeJengaManager(model, 1 << 22, /*caching=*/true);
  Request a = MakeRequest(1, TextPrompt(320), 4, 0.0);
  kv->OnAdmit(a, 1);
  ComputeTokens(*kv, a, 320, 1);
  kv->Release(a, 2);
  Request b = MakeRequest(2, TextPrompt(320), 4, 0.0);
  kv->OnAdmit(b, 3);
  EXPECT_EQ(b.cached_prefix_tokens, 304);  // 19 of 20 blocks (cap leaves one to compute).
  kv->CheckConsistency();
}

TEST(KvManager, MambaStateAndCheckpoints) {
  const ModelConfig model = TinyMambaModel();
  auto kv = MakeJengaManager(model, 1 << 24, /*caching=*/true);
  Request r = MakeRequest(1, TextPrompt(1200), 4, 0.0);
  kv->OnAdmit(r, 1);
  ComputeTokens(*kv, r, 1200, 1);
  const KvSpec& spec = kv->alloc_spec();
  int mamba = -1;
  for (int g = 0; g < static_cast<int>(spec.groups.size()); ++g) {
    if (spec.groups[g].kind == GroupKind::kMamba) {
      mamba = g;
    }
  }
  ASSERT_GE(mamba, 0);
  // One live state page + two checkpoint snapshots (512, 1024) already evictable.
  EXPECT_EQ(kv->allocator().group(mamba).GetStats().used_pages, 1);
  EXPECT_EQ(kv->allocator().group(mamba).GetStats().evictable_pages, 2);
  kv->Release(r, 2);

  // A successor with the same prompt restores from the 1024-token checkpoint; the hit must be
  // a multiple of the checkpoint interval (gated by the Mamba group).
  Request b = MakeRequest(2, TextPrompt(1200), 4, 0.0);
  kv->OnAdmit(b, 3);
  EXPECT_EQ(b.cached_prefix_tokens, 1024);
  kv->CheckConsistency();
}

TEST(KvManager, VisionPagesFreedAsConsumed) {
  const ModelConfig model = TinyVisionModel();
  auto kv = MakeJengaManager(model, 1 << 22, /*caching=*/false);
  // 16 text, 4 images × 8 tokens = 32 image tokens, then 16 text.
  Request r = MakeRequest(1, MixedPrompt(16, 4, 8, 16), 4, 0.0);
  kv->OnAdmit(r, 1);
  const KvSpec& spec = kv->alloc_spec();
  int vision = -1;
  int cross = -1;
  for (int g = 0; g < static_cast<int>(spec.groups.size()); ++g) {
    if (spec.groups[g].kind == GroupKind::kVisionEmbed) {
      vision = g;
    }
    if (spec.groups[g].kind == GroupKind::kCrossAttention) {
      cross = g;
    }
  }
  ASSERT_GE(vision, 0);
  ASSERT_GE(cross, 0);
  // First chunk covers the leading text only; all vision pages (2 blocks of 16) allocated.
  ComputeTokens(*kv, r, 16, 1);
  EXPECT_EQ(kv->allocator().group(vision).GetStats().used_pages, 2);
  // Consume all image tokens: vision embeddings are freed (§6.2 allocate-on-demand mode).
  ComputeTokens(*kv, r, 32, 2);
  EXPECT_EQ(kv->allocator().group(vision).GetStats().used_pages, 0);
  // Cross-attention KV for the 32 image tokens stays: 2 blocks.
  EXPECT_EQ(kv->allocator().group(cross).GetStats().used_pages, 2);
  ComputeTokens(*kv, r, 16, 3);
  kv->CheckConsistency();
}

TEST(KvManager, RollbackOnOutOfMemory) {
  const ModelConfig model = TinyFullModel();
  // Pool of exactly 4 large pages (page = 16 KiB here): 64 blocks... make it tiny: 2 pages.
  const KvSpec spec = MakeJengaSpec(model, kBs, false);
  auto kv = std::make_unique<KvManager>(spec, spec, spec.LcmPageBytes() * 2, JengaOptions(false));
  Request r = MakeRequest(1, TextPrompt(16 * 3), 4, 0.0);
  kv->OnAdmit(r, 1);
  // Only 2 blocks fit; allocation of 3 must fail and roll back cleanly.
  EXPECT_FALSE(kv->AllocateForTokens(r, 48, 1));
  EXPECT_EQ(kv->allocator().lcm().num_allocated(), 0);
  EXPECT_TRUE(kv->AllocateForTokens(r, 32, 1));
  kv->CheckConsistency();
}

TEST(KvManager, CanAllocateReflectsCapacity) {
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, kBs, false);
  auto kv = std::make_unique<KvManager>(spec, spec, spec.LcmPageBytes() * 64, JengaOptions(false));
  Request r = MakeRequest(1, TextPrompt(512), 4, 0.0);
  EXPECT_TRUE(kv->CanAllocate(r, 512));
  Request big = MakeRequest(2, TextPrompt(16 * 65), 4, 0.0);
  EXPECT_FALSE(kv->CanAllocate(big, 16 * 65));
}

TEST(KvManager, DecodeKvReadBytesFollowsDependencies) {
  const ModelConfig model = TinySlidingModel(64);
  auto kv = MakeJengaManager(model, 1 << 22, false);
  Request r = MakeRequest(1, TextPrompt(320), 4, 0.0);
  kv->OnAdmit(r, 1);
  ComputeTokens(*kv, r, 320, 1);
  // 2 full layers read 320 tokens, 2 sliding layers read 64.
  EXPECT_EQ(kv->DecodeKvReadBytes(r), 2LL * 256 * 320 + 2LL * 256 * 64);
}

TEST(KvManager, SharedPrefixAcrossConcurrentRequests) {
  const ModelConfig model = TinyFullModel();
  auto kv = MakeJengaManager(model, 1 << 22);
  Request a = MakeRequest(1, TextPrompt(160), 8, 0.0);
  kv->OnAdmit(a, 1);
  ComputeTokens(*kv, a, 160, 1);
  // b admits while a still runs: shares a's used pages via ref counting.
  Request b = MakeRequest(2, TextPrompt(160), 8, 0.0);
  kv->OnAdmit(b, 2);
  EXPECT_EQ(b.cached_prefix_tokens, 144);
  const auto stats = kv->allocator().group(0).GetStats();
  EXPECT_EQ(stats.used_pages, 10);  // No duplicate pages for the shared blocks.
  kv->Release(a, 3);
  kv->Release(b, 3);
  kv->CheckConsistency();
}

TEST(KvManager, FinishedReleaseDropsRequestAffinityState) {
  // Finishing a request must not leak per-request free-ref map entries in any group; a
  // preempting release keeps them (the id re-admits and §4.3 placement wants its affinity).
  const ModelConfig model = TinySlidingModel(64);
  auto kv = MakeJengaManager(model, 1 << 22);
  for (RequestId id = 1; id <= 20; ++id) {
    Request r = MakeRequest(id, TextPrompt(100), 4, 0.0);
    kv->OnAdmit(r, id);
    // Later iterations admit with a cached prefix; only the remainder gets computed.
    ComputeTokens(*kv, r, 100 - r.num_computed_tokens, id);
    kv->Release(r, id + 1, /*finished=*/true);
  }
  for (int g = 0; g < kv->allocator().num_groups(); ++g) {
    EXPECT_EQ(kv->allocator().group(g).GetFreeListStats().tracked_requests, 0)
        << "group " << g << " leaked affinity entries for finished requests";
  }
  kv->CheckConsistency();

  // Preemption-style release (finished=false) keeps the affinity entry alive.
  Request r = MakeRequest(99, TextPrompt(100), 4, 0.0);
  kv->OnAdmit(r, 50);
  ComputeTokens(*kv, r, 100 - r.num_computed_tokens, 50);
  kv->Release(r, 51);
  int64_t tracked = 0;
  for (int g = 0; g < kv->allocator().num_groups(); ++g) {
    tracked += kv->allocator().group(g).GetFreeListStats().tracked_requests;
  }
  EXPECT_GT(tracked, 0);
  kv->CheckConsistency();
}

}  // namespace
}  // namespace jenga
