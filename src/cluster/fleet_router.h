// Fleet serving: one FleetRouter owns N Engine replicas (each with its own config, KV
// manager, and allocator stack — one simulated GPU per replica) and dispatches requests by
// prefix affinity. A cluster-level prefix index (per-replica block-hash summaries fed by the
// allocators' CacheResidencySink events) scores each replica by longest resident prefix of
// the prompt's routing-group hash chain; load-aware spillover redirects to the least-loaded
// replica when the affine replica is saturated (waiting-queue depth or pool-occupancy
// watermark), and per-replica admission backpressure surfaces through TrySubmit.
//
// Determinism contract (DESIGN.md §10): this class is the seeded single-threaded reference.
// Replicas are stepped in index order, scoring ties break to the lowest replica index, and
// the only seed-dependent state is the round-robin start slot — a fleet run is replayable
// from (config, seed, submit/step sequence). The concurrent counterpart (FleetFrontend)
// reuses DecideRoute over racy load snapshots and is deliberately NOT deterministic.

#ifndef JENGA_SRC_CLUSTER_FLEET_ROUTER_H_
#define JENGA_SRC_CLUSTER_FLEET_ROUTER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/cluster/prefix_index.h"
#include "src/cluster/replica_supervisor.h"
#include "src/common/status.h"
#include "src/engine/engine.h"
#include "src/engine/request.h"
#include "src/fault/fault_injector.h"

namespace jenga {

enum class RoutePolicy {
  kRoundRobin,      // Ignore caches and load: replica = slot % N (the baseline).
  kPrefixAffinity,  // Longest resident prefix wins; least-loaded fallback; load spillover.
};

[[nodiscard]] const char* RoutePolicyName(RoutePolicy policy);

struct FleetConfig {
  int num_replicas = 1;
  // Per-replica engine configuration (every replica gets a copy — homogeneous fleet).
  EngineConfig engine;
  // Optional per-replica KV pool sizes (bytes), for heterogeneous fleets — e.g. replicas
  // that ceded memory to a co-tenant or run a shrunken pool after an elastic resize. Empty =
  // every replica uses `engine`'s pool; otherwise the size must equal num_replicas and entry
  // i overrides replica i's pool_bytes_override (0 keeps `engine`'s setting for that one).
  std::vector<int64_t> replica_pool_bytes;
  RoutePolicy policy = RoutePolicy::kPrefixAffinity;
  // A replica is saturated when its waiting queue is at least this deep...
  int spill_queue_depth = 8;
  // ...or its pool occupancy (used bytes / pool bytes) is at or above this watermark.
  double spill_occupancy = 0.95;
  // Replay seed: fixes the round-robin start slot.
  uint64_t seed = 0;
  // Fleet-scoped fault world (replica_death / replica_stall sites). Consulted once per live
  // replica per fleet step, in replica-index order, so a (plan, seed) pair replays the same
  // kill/stall sequence byte-identically. Engine-scoped sites in the plan are ignored here.
  // Empty plan (the default) constructs no injector: the fault-free path is byte-identical
  // to a build without the subsystem.
  FaultConfig fleet_fault;
  // How many fleet steps a replica_stall freezes the replica for.
  int64_t stall_steps = 16;
};

struct RouteDecision {
  int replica = 0;
  enum class Reason : uint8_t {
    kAffinity,     // Longest resident prefix, replica not saturated.
    kSpill,        // Affine replica saturated; redirected by load.
    kLeastLoaded,  // No resident prefix anywhere; pure load balancing.
    kRoundRobin,   // kRoundRobin policy.
  } reason = Reason::kRoundRobin;
  // Resident prefix blocks on the *affine* (best-scoring) replica at decision time.
  int64_t affinity_blocks = 0;
  // Every replica was saturated when the decision was made (backpressure signal).
  bool all_saturated = false;
};

[[nodiscard]] const char* RouteReasonName(RouteDecision::Reason reason);

// One replica's load as the routing decision sees it.
struct ReplicaLoadView {
  int64_t waiting = 0;
  int64_t running = 0;
  double occupancy = 0.0;  // used bytes / pool bytes.
  // Dead or stalled replicas are unroutable: DecideRoute skips them in every scan (affinity,
  // least-loaded, round-robin rotation, saturation). At least one replica must be alive.
  bool alive = true;
  // Mid-repartition/drain (Engine::elastic_draining): still serving its queue but counted as
  // saturated, so new work spills to healthy replicas until the drain completes.
  bool draining = false;
};

// The KV group whose hash chain routing scores against: prefer a full-attention all-token
// group (its prefix-cache residency is the longest-lived), else any all-token attention-like
// group; -1 when the spec has none (affinity scoring disabled, pure load balancing).
[[nodiscard]] int PickRoutingGroup(const KvSpec& spec);

// Pure, deterministic routing decision over a snapshot of per-replica state: the policy
// core shared by FleetRouter (exact snapshots) and FleetFrontend (racy snapshots).
// `affinity_blocks` holds the per-replica resident-prefix scores (may be empty for
// kRoundRobin); `round_robin_slot` selects the kRoundRobin target. Ties break to the lowest
// replica index everywhere.
[[nodiscard]] RouteDecision DecideRoute(RoutePolicy policy, int spill_queue_depth,
                                        double spill_occupancy,
                                        std::span<const ReplicaLoadView> loads,
                                        std::span<const int64_t> affinity_blocks,
                                        int64_t round_robin_slot);

struct FleetCounters {
  int64_t submitted = 0;
  int64_t routed_affinity = 0;
  int64_t routed_spill = 0;
  int64_t routed_least_loaded = 0;
  int64_t routed_round_robin = 0;
  // Submits placed while every replica was saturated (Submit never refuses; this is the
  // pressure signal a caller that used Submit instead of TrySubmit would have seen).
  int64_t saturated_submits = 0;
  // TrySubmit refusals (all replicas saturated).
  int64_t backpressure_rejections = 0;
  int64_t cancelled = 0;

  // Recovery ledger. Re-routed submissions deliberately do NOT bump `submitted` or the
  // routed_* reason tallies — those count client intent — so the conservation identity is
  //   Σ replica finished records == submitted + rerouted,   with death_cancels == rerouted
  // in the deterministic driver (every harvested request is re-submitted exactly once).
  int64_t replica_deaths = 0;       // Replicas killed (scheduled or injector-fired).
  int64_t replica_stalls = 0;       // Stalls applied.
  int64_t death_cancels = 0;        // Requests cancelled off a dead replica at harvest.
  int64_t rerouted = 0;             // Harvested requests re-submitted to a survivor.
  int64_t death_fires_ignored = 0;  // replica_death fires suppressed (last live replica).
  // Threaded driver (FleetFrontend) only; always 0 in the deterministic FleetRouter.
  int64_t rejected_submits = 0;     // Post-Shutdown submit refusals (both entry points).
  int64_t lost_on_shutdown = 0;     // Harvested work that could not be re-placed (kFailed).
};

class FleetRouter {
 public:
  explicit FleetRouter(FleetConfig config);

  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  // Scores the request and picks a replica without submitting. Advances the round-robin
  // cursor under the kRoundRobin policy (so alternating Route/Submit calls still rotate).
  [[nodiscard]] RouteDecision Route(const Request& request);

  // Routes and submits; returns the decision. Always places the request (spillover picks the
  // least-loaded replica when everything is saturated).
  RouteDecision Submit(Request request);

  // Backpressure-aware variant: kResourceExhausted — and no side effects — when every
  // replica is saturated; otherwise routes like Submit and returns the chosen replica.
  [[nodiscard]] StatusOr<int> TrySubmit(Request request);

  // Steps every replica once, in replica-index order; false when no replica has work left.
  bool StepOnce();

  // Runs until every submitted request finished (`max_steps` fleet steps as a runaway guard).
  void RunToCompletion(int64_t max_steps = 2000000);

  // Replays a timed trace: requests are submitted in arrival order once the fleet clock (max
  // replica time) reaches each arrival, so every routing decision sees the cache and load
  // state of that moment — not the initial empty fleet. Steps to completion.
  void RunTimedTrace(std::vector<Request> requests, int64_t max_steps = 2000000);

  // Cancels a request wherever it was routed; false for unknown ids.
  bool CancelRequest(RequestId id);

  // Kills a live replica: marks it unroutable, detaches its residency sink, purges its
  // cluster-index summary, cancels its active work with full reclamation (the dead engine
  // still audits clean), and re-submits every harvested request to a surviving replica
  // (recompute-from-prompt). CHECK-fails on a dead replica or when it is the last one live.
  void KillReplica(int replica);

  // Freezes a live replica for `steps` fleet steps: unroutable and not stepped until the
  // stall expires. Its queued/running work simply waits out the stall.
  void StallReplica(int replica, int64_t steps);

  [[nodiscard]] bool ReplicaAlive(int replica) const { return supervisor_.alive(replica); }
  [[nodiscard]] const ReplicaSupervisor& supervisor() const { return supervisor_; }
  // Total fleet-site fault fires; 0 when no fleet fault plan is armed.
  [[nodiscard]] int64_t FleetFaultFires() const {
    return fleet_fault_ == nullptr ? 0 : fleet_fault_->total_fires();
  }
  [[nodiscard]] int64_t fleet_steps() const { return fleet_steps_; }

  // A replica is saturated when its waiting depth or occupancy crosses the spill thresholds.
  [[nodiscard]] bool IsSaturated(int replica) const;
  [[nodiscard]] ReplicaLoadView LoadOf(int replica) const;

  // The routing-group hash chain for `prompt` (empty when routing is disabled: prefix
  // caching off or no all-token attention-like group in the spec).
  [[nodiscard]] std::vector<BlockHash> RoutingChain(const Prompt& prompt) const;

  // Simulated cluster wall-clock: max over replica clocks.
  [[nodiscard]] double ClusterClock() const;

  [[nodiscard]] int num_replicas() const { return static_cast<int>(replicas_.size()); }
  [[nodiscard]] Engine& replica(int i) { return *replicas_[static_cast<size_t>(i)]; }
  [[nodiscard]] const Engine& replica(int i) const { return *replicas_[static_cast<size_t>(i)]; }
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  [[nodiscard]] const FleetCounters& counters() const { return counters_; }
  [[nodiscard]] const ClusterPrefixIndex& prefix_index() const { return *index_; }
  [[nodiscard]] bool routing_enabled() const { return routing_group_ >= 0; }
  [[nodiscard]] int routing_group() const { return routing_group_; }
  // Replica a live-or-finished request was routed to; -1 for unknown ids.
  [[nodiscard]] int PlacementOf(RequestId id) const;

 private:
  void CountDecision(const RouteDecision& decision);
  // Routes and submits a revived request, booking it as a re-route (not a client submit).
  void ResubmitRevived(Request request);
  // Consults the fleet fault sites for this step (replica-index order) and applies fires.
  void ConsultFleetFaults();

  FleetConfig config_;
  std::vector<std::unique_ptr<Engine>> replicas_;
  std::unique_ptr<ClusterPrefixIndex> index_;
  ReplicaSupervisor supervisor_;
  std::unique_ptr<FaultInjector> fleet_fault_;
  int routing_group_ = -1;
  int routing_block_size_ = 0;
  uint64_t routing_salt_ = 0;
  int64_t rr_cursor_ = 0;
  int64_t fleet_steps_ = 0;
  std::unordered_map<RequestId, int> placement_;
  FleetCounters counters_;
};

}  // namespace jenga

#endif  // JENGA_SRC_CLUSTER_FLEET_ROUTER_H_
