// Differential tests for the admission fast path: an engine with memoized admission state
// (EngineConfig::memoize_admission, the default) must behave bit for bit like the
// rebuild-from-scratch reference across preempt→re-admit and swap-out→restore cycles, for
// every LayerPolicy family. The whole binary also arms JENGA_CHECK_ADMISSION, so every
// admission additionally cross-checks the fused O(blocks) hit scan against the
// materialized-bitmap reference inside KvManager.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

#include "src/engine/engine.h"
#include "src/engine/kv_manager.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

// Arm the fused-scan differential audit before any engine is constructed (the flag is
// read once and cached on first admission).
const bool kAuditArmed = []() {
  setenv("JENGA_CHECK_ADMISSION", "1", /*overwrite=*/1);
  return true;
}();

// Everything the scheduler's trajectory determines: if any admission decision, hit count, or
// modality rebuild diverged, some field here diverges too.
std::string Fingerprint(const Engine& engine) {
  const EngineMetrics& m = engine.metrics();
  std::ostringstream os;
  os.precision(17);
  os << "now=" << engine.now() << " steps=" << m.total_steps()
     << " sched=" << m.total_scheduled_tokens() << " done=" << m.CompletedRequests()
     << " failed=" << m.FailedRequests() << " hit=" << m.cache_hit_tokens
     << " prefill=" << m.prefill_tokens_computed << " recomputed=" << m.recomputed_tokens
     << " swap_out=" << m.swap_out_events << " swap_in=" << m.swap_in_events
     << " vision_runs=" << m.vision_encoder_runs << "\n";
  for (const RequestRecord& r : m.finished()) {
    os << "r" << r.id << " cached=" << r.cached_prefix_tokens << " pre=" << r.preemptions
       << " out=" << r.output_len << " fin=" << r.finish_time << "\n";
  }
  return os.str();
}

// Runs the same workload twice — memoized and rebuild-from-scratch — and requires identical
// trajectories. Returns the memoized engine's total preemptions so callers can assert the
// scenario actually exercised re-admission.
int ExpectMemoEquivalent(const EngineConfig& config,
                         const std::function<void(Engine&)>& submit) {
  EngineConfig memo_config = config;
  memo_config.memoize_admission = true;
  Engine memoized(memo_config);
  submit(memoized);
  memoized.RunToCompletion();
  memoized.kv().CheckConsistency();

  EngineConfig ref_config = config;
  ref_config.memoize_admission = false;
  Engine reference(ref_config);
  submit(reference);
  reference.RunToCompletion();
  reference.kv().CheckConsistency();

  EXPECT_EQ(Fingerprint(memoized), Fingerprint(reference)) << "model " << config.model.name;
  int preemptions = 0;
  for (const RequestRecord& r : memoized.metrics().finished()) {
    preemptions += r.preemptions;
  }
  return preemptions;
}

// Pool sized in LCM pages so each model fits ~2 of the 4 requests: sustained preemption
// churn, the same pressure shape as the offload engine tests.
EngineConfig PressureConfig(const ModelConfig& model, int lcm_pages, bool offload,
                            bool swap_preemption) {
  EngineConfig config;
  config.model = model;
  config.gpu = TestGpu();
  config.jenga = true;
  config.vision_cache = true;
  const KvSpec spec = MakeJengaSpec(model, config.tokens_per_page, config.vision_cache);
  config.pool_bytes_override = spec.LcmPageBytes() * lcm_pages;
  if (offload) {
    config.offload.enabled = true;
    config.offload.swap_preemption = swap_preemption;
    config.offload.host_prefix_cache = true;
    config.offload.host_pool_bytes = 1ll << 30;
    config.offload.pcie.h2d_bandwidth = 1e15;
    config.offload.pcie.d2h_bandwidth = 1e15;
    config.offload.pcie.per_transfer_latency = 0.0;
  }
  return config;
}

// Shared prefixes across the batch so re-admissions see real cache hits (the memoized scan's
// interesting regime), staggered arrivals so admission order interleaves with preemption.
void SubmitTextBatch(Engine& engine, int64_t prompt_len, int64_t output_len) {
  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(prompt_len), output_len, 0.001 * i));
  }
}

TEST(AdmissionMemo, FullAttentionPreemptReAdmit) {
  const int preemptions = ExpectMemoEquivalent(
      PressureConfig(TinyFullModel(), 24, /*offload=*/false, /*swap_preemption=*/false),
      [](Engine& e) { SubmitTextBatch(e, 96, 80); });
  EXPECT_GT(preemptions, 0);
}

TEST(AdmissionMemo, SlidingWindowPreemptReAdmit) {
  const int preemptions = ExpectMemoEquivalent(
      PressureConfig(TinySlidingModel(), 24, /*offload=*/false, /*swap_preemption=*/false),
      [](Engine& e) { SubmitTextBatch(e, 96, 80); });
  EXPECT_GT(preemptions, 0);
}

TEST(AdmissionMemo, PyramidPreemptReAdmit) {
  const int preemptions = ExpectMemoEquivalent(
      PressureConfig(TinyPyramidModel(), 24, /*offload=*/false, /*swap_preemption=*/false),
      [](Engine& e) { SubmitTextBatch(e, 96, 80); });
  EXPECT_GT(preemptions, 0);
}

TEST(AdmissionMemo, MambaPreemptReAdmit) {
  // Prompts past one checkpoint interval (512) so the Mamba chain actually has entries.
  const int preemptions = ExpectMemoEquivalent(
      PressureConfig(TinyMambaModel(), 18, /*offload=*/false, /*swap_preemption=*/false),
      [](Engine& e) { SubmitTextBatch(e, 640, 200); });
  EXPECT_GT(preemptions, 0);
}

TEST(AdmissionMemo, VisionMixedModalityPreemptReAdmit) {
  // Image/text-scoped groups: the memoized modality prefix counts drive the stream rebuild.
  const int preemptions = ExpectMemoEquivalent(
      PressureConfig(TinyVisionModel(), 28, /*offload=*/false, /*swap_preemption=*/false),
      [](Engine& e) {
        for (int i = 0; i < 4; ++i) {
          e.Submit(MakeRequest(i, MixedPrompt(32, 3, 8, 40), 64, 0.001 * i));
        }
      });
  EXPECT_GT(preemptions, 0);
}

TEST(AdmissionMemo, SwapRestoreRoundTrip) {
  // Swap-out→restore replays computed tokens through OnStepComputed: the memoized stream
  // extension must reproduce the per-token rebuild exactly.
  for (const ModelConfig& model : {TinyFullModel(), TinySlidingModel()}) {
    EngineConfig config =
        PressureConfig(model, 24, /*offload=*/true, /*swap_preemption=*/true);
    Engine probe(config);
    SubmitTextBatch(probe, 96, 80);
    probe.RunToCompletion();
    ASSERT_GT(probe.metrics().swap_in_events, 0) << model.name;
    const int preemptions = ExpectMemoEquivalent(
        config, [](Engine& e) { SubmitTextBatch(e, 96, 80); });
    EXPECT_GT(preemptions, 0) << model.name;
  }
}

TEST(AdmissionMemo, VisionSwapRestoreRoundTrip) {
  const EngineConfig config =
      PressureConfig(TinyVisionModel(), 28, /*offload=*/true, /*swap_preemption=*/true);
  ExpectMemoEquivalent(config, [](Engine& e) {
    for (int i = 0; i < 4; ++i) {
      e.Submit(MakeRequest(i, MixedPrompt(32, 3, 8, 40), 64, 0.001 * i));
    }
  });
}

TEST(AdmissionMemo, HomogeneousBaselineEquivalent) {
  // jenga=false: full-prefix rules on the homogeneous spec; the memo must be inert here too.
  EngineConfig config =
      PressureConfig(TinyFullModel(), 24, /*offload=*/false, /*swap_preemption=*/false);
  config.jenga = false;
  const KvSpec spec = MakeHomogeneousSpec(TinyFullModel(), config.tokens_per_page);
  config.pool_bytes_override = spec.LcmPageBytes() * 24;
  ExpectMemoEquivalent(config, [](Engine& e) { SubmitTextBatch(e, 96, 80); });
}

TEST(AdmissionMemo, MemoSurvivesManyReAdmissions) {
  // Long outputs + tiny pool: each request cycles through admission repeatedly, so the memo
  // is reused with an ever-growing generated tail.
  ASSERT_TRUE(kAuditArmed);
  const int preemptions = ExpectMemoEquivalent(
      PressureConfig(TinyFullModel(), 16, /*offload=*/false, /*swap_preemption=*/false),
      [](Engine& e) { SubmitTextBatch(e, 48, 160); });
  EXPECT_GT(preemptions, 3);
}

}  // namespace
}  // namespace jenga
