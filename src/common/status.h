// Lightweight Status / StatusOr error type for recoverable runtime conditions.
//
// JENGA_CHECK (check.h) stays reserved for library invariants — conditions that indicate a bug
// and can never be handled. Everything that a correct caller may legitimately observe at
// runtime (an injected transfer fault, host-pool exhaustion, a cancelled request, a deadline)
// is reported through Status instead so the engine can recover: retry with backoff, fall back
// to recompute-based preemption, degrade to GPU-only mode, or shed load.
//
// The type is deliberately small: an error code plus an optional message, no payloads, no
// allocation on the OK path. StatusOr<T> carries a value on success and a Status otherwise.

#ifndef JENGA_SRC_COMMON_STATUS_H_
#define JENGA_SRC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

#include "src/common/check.h"

namespace jenga {

enum class StatusCode {
  kOk = 0,
  kCancelled = 1,          // The operation's request was cancelled by the client.
  kInvalidArgument = 2,    // Malformed input (e.g. an unparsable fault plan).
  kDeadlineExceeded = 3,   // A transfer or request exceeded its time budget.
  kNotFound = 4,           // The referenced entity does not exist.
  kResourceExhausted = 5,  // A pool could not satisfy an allocation.
  kFailedPrecondition = 6, // The operation is not valid in the current state.
  kUnavailable = 7,        // A transient failure; retrying may succeed.
  kInternal = 8,           // An injected or simulated internal fault.
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Cancelled(std::string m = "") { return Status(StatusCode::kCancelled, std::move(m)); }
  static Status InvalidArgument(std::string m = "") { return Status(StatusCode::kInvalidArgument, std::move(m)); }
  static Status DeadlineExceeded(std::string m = "") { return Status(StatusCode::kDeadlineExceeded, std::move(m)); }
  static Status NotFound(std::string m = "") { return Status(StatusCode::kNotFound, std::move(m)); }
  static Status ResourceExhausted(std::string m = "") { return Status(StatusCode::kResourceExhausted, std::move(m)); }
  static Status FailedPrecondition(std::string m = "") { return Status(StatusCode::kFailedPrecondition, std::move(m)); }
  static Status Unavailable(std::string m = "") { return Status(StatusCode::kUnavailable, std::move(m)); }
  static Status Internal(std::string m = "") { return Status(StatusCode::kInternal, std::move(m)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }
  friend bool operator!=(const Status& a, const Status& b) { return a.code_ != b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

// Minimal StatusOr: either an OK status plus a value, or a non-OK status. Accessing the value
// of a non-OK StatusOr is a contract violation (JENGA_CHECK).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT(google-explicit-constructor)
    JENGA_CHECK(!status_.ok()) << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    JENGA_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return value_;
  }
  T& value() & {
    JENGA_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return value_;
  }
  T&& value() && {
    JENGA_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace jenga

#endif  // JENGA_SRC_COMMON_STATUS_H_
