// Fleet routing mini-golden: a seeded 4-replica FleetRouter trace whose per-request routing
// decisions, fleet counters, and full per-replica run serialization (engine debug dump +
// metrics + request records, plus a SHA-256 digest) are byte-compared against a committed
// golden. Routing-policy drift — or any perturbation of the fault-free fleet path — shows up
// as a one-line diff in seconds instead of a bench run.
//
// The golden was generated at the commit *before* the replica failure/recovery work landed,
// so it doubles as the differential anchor pinning fault-free fleet runs byte-identical to
// pre-change HEAD. Regenerate only after a deliberate behavior change:
//   JENGA_REGEN_GOLDENS=1 ./build/tests/fleet_route_golden_test
// then review the diff of tests/golden/data/ like any other code change.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/cluster_metrics.h"
#include "src/cluster/fleet_router.h"
#include "src/common/random.h"
#include "src/common/sha256.h"
#include "src/engine/engine.h"
#include "src/metrics/metrics.h"
#include "src/workload/datasets.h"
#include "tests/cluster/fleet_test_util.h"

namespace jenga {
namespace {

std::string Num(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  return buffer;
}

void SerializeRun(Engine& engine, std::ostream& os) {
  engine.DumpStateForDebug(os);
  const EngineMetrics& m = engine.metrics();
  os << std::setprecision(17);
  os << "cache_hit_tokens=" << m.cache_hit_tokens
     << " prefill_tokens_computed=" << m.prefill_tokens_computed
     << " total_steps=" << m.total_steps()
     << " total_scheduled_tokens=" << m.total_scheduled_tokens()
     << " last_time=" << m.last_time() << "\n";
  for (const RequestRecord& r : m.finished()) {
    os << "req " << r.id << " prompt=" << r.prompt_len << " out=" << r.output_len
       << " cached=" << r.cached_prefix_tokens << " preempt=" << r.preemptions
       << " arrive=" << r.arrival_time << " sched=" << r.first_scheduled_time
       << " ttft=" << r.first_token_time << " finish=" << r.finish_time
       << " failed=" << r.failed << " cancelled=" << r.cancelled << "\n";
  }
}

// 24 requests over 6 shared articles: submitted one at a time with a few fleet steps in
// between, so later decisions see warm caches and real load — the regime where affinity,
// spill, and least-loaded all fire.
std::vector<Request> GoldenTrace() {
  Rng rng(0x601DF1EE7ull);
  std::vector<Request> trace;
  for (int i = 0; i < 24; ++i) {
    const int article = static_cast<int>(rng.UniformInt(0, 5));
    const int question = static_cast<int>(rng.UniformInt(0, 3));
    const int64_t len = rng.UniformInt(80, 144);
    const int64_t output = rng.UniformInt(4, 12);
    trace.push_back(MakeRequest(/*id=*/i + 1, ArticlePrompt(article, len, question), output,
                                /*arrival=*/0.0));
  }
  return trace;
}

void AppendPolicyRun(RoutePolicy policy, std::ostringstream& out) {
  FleetRouter fleet(TestFleetConfig(/*num_replicas=*/4, policy, /*seed=*/7));
  out << "policy=" << RoutePolicyName(policy) << " replicas=4 seed=7\n";
  for (Request& request : GoldenTrace()) {
    const RequestId id = request.id;
    const RouteDecision decision = fleet.Submit(std::move(request));
    out << "req " << id << " -> r" << decision.replica << " "
        << RouteReasonName(decision.reason) << " aff=" << decision.affinity_blocks
        << " sat=" << (decision.all_saturated ? 1 : 0) << "\n";
    for (int step = 0; step < 3; ++step) {
      fleet.StepOnce();
    }
  }
  fleet.RunToCompletion();

  const FleetCounters& c = fleet.counters();
  out << "counters submitted=" << c.submitted << " affinity=" << c.routed_affinity
      << " spill=" << c.routed_spill << " least_loaded=" << c.routed_least_loaded
      << " round_robin=" << c.routed_round_robin << " saturated=" << c.saturated_submits
      << " backpressure=" << c.backpressure_rejections << " cancelled=" << c.cancelled
      << "\n";
  const FleetStats stats = ClusterMetrics::FromRouter(fleet);
  out << "fleet completed=" << stats.completed << " failed=" << stats.failed
      << " hit_rate=" << Num(stats.hit_rate) << "\n";

  std::ostringstream replicas;
  for (int i = 0; i < fleet.num_replicas(); ++i) {
    replicas << "--- replica " << i << " ---\n";
    SerializeRun(fleet.replica(i), replicas);
  }
  out << replicas.str();
  out << "sha256=" << Sha256Hex(replicas.str()) << "\n";
}

std::string FleetRouteDigest() {
  std::ostringstream out;
  out << "fleet-route-golden (tiny full-attention model, 4 replicas, 24 requests)\n";
  AppendPolicyRun(RoutePolicy::kPrefixAffinity, out);
  AppendPolicyRun(RoutePolicy::kRoundRobin, out);
  return out.str();
}

std::string GoldenPath(const char* name) {
  return std::string(JENGA_SOURCE_DIR) + "/tests/golden/data/" + name;
}

void CompareOrRegen(const char* name, const std::string& digest) {
  const std::string path = GoldenPath(name);
  if (std::getenv("JENGA_REGEN_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << digest;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with JENGA_REGEN_GOLDENS=1 to create it)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(digest, expected.str())
      << "golden mismatch for " << name
      << "; if the behavior change is intentional, regenerate with JENGA_REGEN_GOLDENS=1 "
      << "and review the diff";
}

TEST(FleetRouteGolden, SeededFourReplicaTrace) {
  CompareOrRegen("fleet_route.golden", FleetRouteDigest());
}

}  // namespace
}  // namespace jenga
