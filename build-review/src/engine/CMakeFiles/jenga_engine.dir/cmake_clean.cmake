file(REMOVE_RECURSE
  "CMakeFiles/jenga_engine.dir/engine.cc.o"
  "CMakeFiles/jenga_engine.dir/engine.cc.o.d"
  "CMakeFiles/jenga_engine.dir/gpu.cc.o"
  "CMakeFiles/jenga_engine.dir/gpu.cc.o.d"
  "CMakeFiles/jenga_engine.dir/kv_manager.cc.o"
  "CMakeFiles/jenga_engine.dir/kv_manager.cc.o.d"
  "CMakeFiles/jenga_engine.dir/request.cc.o"
  "CMakeFiles/jenga_engine.dir/request.cc.o.d"
  "CMakeFiles/jenga_engine.dir/spec_decode.cc.o"
  "CMakeFiles/jenga_engine.dir/spec_decode.cc.o.d"
  "libjenga_engine.a"
  "libjenga_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jenga_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
