// The two-level memory manager facade (Figure 5): an LCM allocator at the bottom, one
// customized small-page allocator per KV group on top, and the global coordination between
// them — in particular step 3 of §5.4, evicting the globally least-recently-used *evictable
// large page* (from any group) when the free list runs dry, which is what lets memory flow
// between layer types under shifting workloads.

#ifndef JENGA_SRC_CORE_JENGA_ALLOCATOR_H_
#define JENGA_SRC_CORE_JENGA_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/audit_events.h"
#include "src/core/lcm_allocator.h"
#include "src/core/small_page_allocator.h"
#include "src/model/kv_spec.h"

namespace jenga {

class JengaAllocator final : public LargePageProvider {
 public:
  // Creates the two-level allocator over a `pool_bytes` KV pool; the large-page size is the
  // LCM of the group page sizes (overridable for ablations, must be a common multiple).
  // `shards` > 1 switches every group allocator's empty-page index to the lock-free
  // ShardedClaimIndex (see SmallPageAllocator); 1 keeps the deterministic legacy lists.
  JengaAllocator(KvSpec spec, int64_t pool_bytes, int64_t large_page_bytes_override = 0,
                 int shards = 1);

  JengaAllocator(const JengaAllocator&) = delete;
  JengaAllocator& operator=(const JengaAllocator&) = delete;

  [[nodiscard]] int num_groups() const { return static_cast<int>(groups_.size()); }
  [[nodiscard]] SmallPageAllocator& group(int index) { return *groups_[static_cast<size_t>(index)]; }
  [[nodiscard]] const SmallPageAllocator& group(int index) const {
    return *groups_[static_cast<size_t>(index)];
  }
  [[nodiscard]] const KvSpec& spec() const { return spec_; }
  [[nodiscard]] const LcmAllocator& lcm() const { return lcm_; }

  // LargePageProvider: serves group allocators. Tries the free list, then evicts the
  // globally-LRU evictable large page.
  [[nodiscard]] std::optional<LargePageId> AcquireLargePage(int group_index) override;
  void OnReclaimCandidate(int group_index, LargePageId large, Tick timestamp) override;

  // --- Elastic resize (governor-driven; requires shards == 1, the deterministic mode) ---

  // Appends `pages` free large pages to the pool. Always succeeds; the governor owns the
  // decision of whether the bytes exist to back them.
  void GrowPool(int32_t pages);

  // Opportunistically removes up to `pages` trailing large pages: free pages are dropped
  // directly and whole-evictable trailing pages are drained through ReclaimLargePage first
  // (their cached content parks in the host tier via the eviction sink, same path as step-3
  // reclaims). Stops at the first trailing page with used slots — the id space must stay
  // dense — and returns the number of pages actually removed (possibly 0).
  [[nodiscard]] int32_t ShrinkPool(int32_t pages);

  // Trailing pages removable right now without touching a used slot (what ShrinkPool would
  // return, without doing it).
  [[nodiscard]] int32_t ShrinkablePages(int32_t pages) const;

  // Drops every group's affinity free list for a retired request id (see
  // SmallPageAllocator::ForgetRequest).
  void ForgetRequest(RequestId request);

  // Installs a cache-eviction observer on every group allocator (host offload tier).
  void SetEvictionSink(CacheEvictionSink* sink);

  // Installs a prefix-cache residency observer on every group allocator (cluster routing
  // summaries); nullptr detaches. Pure observation — never changes allocation behavior.
  void SetResidencySink(CacheResidencySink* sink);

  // Installs an audit observer on this allocator and every group (nullptr detaches).
  void SetAuditSink(AuditSink* sink);

  // Total small pages (across groups) that could still be produced without evicting anything
  // cached: free large pages × pages-per-large for `group_index`, plus its empty smalls.
  [[nodiscard]] int64_t FreeSmallPages(int group_index) const;
  // As above but also counting evictable capacity (what allocation can obtain at the cost of
  // cache evictions).
  [[nodiscard]] int64_t AvailableSmallPages(int group_index) const;

  struct MemoryBreakdown {
    int64_t pool_bytes = 0;
    int64_t allocated_bytes = 0;    // Large pages held by any group.
    int64_t used_bytes = 0;         // Small pages referenced by running requests.
    int64_t evictable_bytes = 0;    // Cached, reclaimable.
    int64_t empty_bytes = 0;        // Internal fragmentation inside held large pages.
    int64_t unallocated_bytes = 0;  // Free large pages + trailing pool slack.
  };
  [[nodiscard]] MemoryBreakdown GetBreakdown() const;

  // O(1) pool occupancy in [0, 1]: fraction of capacity held by any group, identical to
  // 1 − unallocated/pool from GetBreakdown but without the per-group stats walk (and without
  // the per-request needed-bytes walk of KvManager::GetMemoryStats). The shed gate and the
  // elastic governor probe this every step, so it must stay counter-only. 0 on an empty pool.
  [[nodiscard]] double Occupancy() const {
    const int64_t pool =
        static_cast<int64_t>(lcm_.num_pages()) * lcm_.large_page_bytes() + lcm_.slack_bytes();
    if (pool <= 0) {
      return 0.0;
    }
    const int64_t unallocated =
        static_cast<int64_t>(lcm_.num_free()) * lcm_.large_page_bytes() + lcm_.slack_bytes();
    return 1.0 - static_cast<double>(unallocated) / static_cast<double>(pool);
  }

  void CheckConsistency() const;

 private:
  friend class AllocatorAuditor;

  struct ReclaimEntry {
    Tick timestamp = 0;
    int group = 0;
    LargePageId large = kNoLargePage;
    // Max-heap by default; invert so the earliest timestamp pops first.
    [[nodiscard]] bool operator<(const ReclaimEntry& other) const {
      return timestamp > other.timestamp;
    }
  };

  void PushReclaim(ReclaimEntry entry);
  [[nodiscard]] ReclaimEntry PopReclaim();

  KvSpec spec_;
  LcmAllocator lcm_;
  std::vector<std::unique_ptr<SmallPageAllocator>> groups_;
  // Duplicate-tolerant on purpose: every whole-evictable notification pushes, and stale
  // entries are filtered (or re-keyed) on pop. Deduplicating pushes would change which entry
  // wins among equal timestamps and therefore which large page gets reclaimed — eviction
  // decisions must stay bit-identical across refactors (see bench_fig17 determinism check).
  //
  // Kept as a raw vector maintained with std::push_heap/std::pop_heap (exactly what
  // std::priority_queue is specified to do, so pop order — including equal-timestamp
  // tie-breaks — is bit-identical to the former priority_queue member) so the auditor can
  // inspect entries without draining the queue.
  std::vector<ReclaimEntry> reclaim_heap_;
  AuditSink* audit_ = nullptr;
};

}  // namespace jenga

#endif  // JENGA_SRC_CORE_JENGA_ALLOCATOR_H_
