// Extending Jenga with a custom attention variant: implement the LayerSupportsPrefixCache
// interface (Figure 9 of the paper) for a StreamingLLM-style layer that attends to a few
// attention-sink tokens plus a recent window, and drive it against the two-level allocator
// directly. This is the extension point the paper's §5 is about — new KV-dependency patterns
// plug in without touching the allocator.

#include <cstdio>
#include <vector>

#include "src/core/jenga_allocator.h"
#include "src/core/layer_policy.h"
#include "src/model/kv_spec.h"

using namespace jenga;

namespace {

// StreamingLLM-ish: the next token depends on the first `sinks` tokens plus the last `window`
// tokens. Everything the base class derives (balanced last-access updates, the hit rule, the
// aligned prefix lengths) follows from NeededTokenRanges.
class StreamingSinkPolicy : public LayerPolicy {
 public:
  StreamingSinkPolicy(int sinks, int window) : sinks_(sinks), window_(window) {}

  const char* name() const override { return "streaming_sink"; }

  std::vector<TokenRange> NeededTokenRanges(int64_t num_tokens) const override {
    if (num_tokens <= sinks_ + window_) {
      return {{0, num_tokens}};
    }
    return {{0, sinks_}, {num_tokens - window_, num_tokens}};
  }

  bool CanDropUnneededPages() const override { return true; }

 private:
  int sinks_;
  int window_;
};

}  // namespace

int main() {
  // One KV group, 16 tokens per 4 KiB page, over a small pool (LCM page forced to 4 small
  // pages by a padding group so the two-level structure is visible).
  KvSpec spec;
  KvGroupSpec group;
  group.name = "streaming";
  group.kind = GroupKind::kSlidingWindow;  // Allocation-wise it behaves like a windowed group.
  group.num_layers = 2;
  group.bytes_per_token_per_layer = 128;
  group.tokens_per_page = 16;
  group.page_bytes = 4096;
  spec.groups.push_back(group);

  JengaAllocator allocator(spec, /*pool_bytes=*/64 * 4096);
  SmallPageAllocator& kv = allocator.group(0);
  StreamingSinkPolicy policy(/*sinks=*/16, /*window=*/64);

  // Simulate one request's prefill: 20 blocks of 16 tokens.
  const RequestId request = 1;
  std::vector<SmallPageId> pages;
  for (int block = 0; block < 20; ++block) {
    pages.push_back(*kv.Allocate(request, /*now=*/block));
  }

  // After 320 tokens, the policy needs sinks [0,16) and window [256,320): pages 1..15 can be
  // dropped. The policy's needed ranges tell us exactly which.
  const auto ranges = policy.NeededTokenRanges(320);
  std::printf("needed ranges at 320 tokens:");
  for (const TokenRange& range : ranges) {
    std::printf(" [%lld, %lld)", static_cast<long long>(range.begin),
                static_cast<long long>(range.end));
  }
  std::printf("\n");

  int dropped = 0;
  for (int block = 0; block < 20; ++block) {
    bool needed = false;
    for (const TokenRange& range : ranges) {
      if (range.begin < (block + 1) * 16 && range.end > block * 16) {
        needed = true;
      }
    }
    if (!needed) {
      kv.Release(pages[static_cast<size_t>(block)], /*keep_cached=*/false);
      pages[static_cast<size_t>(block)] = kNoSmallPage;
      ++dropped;
    }
  }
  std::printf("dropped %d of 20 pages mid-request; allocator now holds %lld used pages\n",
              dropped, static_cast<long long>(kv.GetStats().used_pages));

  // The hit rule comes for free: with the dropped pages missing, which prefixes still hit?
  std::vector<bool> is_hit(20, true);
  for (int block = 1; block < 16; ++block) {
    is_hit[static_cast<size_t>(block)] = false;  // The dropped middle.
  }
  const std::vector<bool> valid = policy.GetPossiblePrefix(is_hit, 16);
  std::printf("valid prefixes (blocks): ");
  for (size_t p = 0; p < valid.size(); ++p) {
    if (valid[p]) {
      std::printf("%zu ", p);
    }
  }
  std::printf("\n(sinks + the last window suffice — exactly the StreamingLLM dependency)\n");

  // Balanced eviction metadata flows through the same interface the built-in policies use.
  RequestPages view;
  view.request = request;
  view.pages = pages;
  view.num_tokens = 320;
  view.tokens_per_page = 16;
  policy.UpdateLastAccess(view, /*now=*/100, kv);
  policy.SetPrefixLength(view, kv);
  std::printf("eviction metadata updated via GroupCacheOps — no allocator changes needed\n");
  return 0;
}
