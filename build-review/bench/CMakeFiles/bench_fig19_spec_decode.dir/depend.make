# Empty dependencies file for bench_fig19_spec_decode.
# This may be replaced when dependencies are built.
