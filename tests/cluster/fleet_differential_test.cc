// The 1-replica fleet must be byte-identical to a bare Engine: the router's residency sink
// and scoring are pure observation, so wrapping an engine in a fleet may not perturb a
// single bit of scheduling, allocation, or metrics. Checked by serializing both runs —
// engine debug state plus every per-request record at full precision — and comparing the
// strings AND their SHA-256 digests.

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include "src/cluster/fleet_router.h"
#include "src/common/random.h"
#include "src/common/sha256.h"
#include "src/engine/engine.h"
#include "src/metrics/metrics.h"
#include "src/workload/datasets.h"
#include "tests/cluster/fleet_test_util.h"

namespace jenga {
namespace {

void SerializeRun(Engine& engine, std::ostream& os) {
  engine.DumpStateForDebug(os);
  const EngineMetrics& m = engine.metrics();
  os << std::setprecision(17);
  os << "cache_hit_tokens=" << m.cache_hit_tokens
     << " prefill_tokens_computed=" << m.prefill_tokens_computed
     << " total_steps=" << m.total_steps()
     << " total_scheduled_tokens=" << m.total_scheduled_tokens()
     << " last_time=" << m.last_time() << "\n";
  for (const RequestRecord& r : m.finished()) {
    os << "req " << r.id << " prompt=" << r.prompt_len << " out=" << r.output_len
       << " cached=" << r.cached_prefix_tokens << " preempt=" << r.preemptions
       << " arrive=" << r.arrival_time << " sched=" << r.first_scheduled_time
       << " ttft=" << r.first_token_time << " finish=" << r.finish_time
       << " failed=" << r.failed << " cancelled=" << r.cancelled << "\n";
  }
}

std::vector<Request> DifferentialTrace() {
  ArxivQaDataset dataset(/*num_articles=*/4, 150, 300, /*seed=*/5);
  Rng rng(23);
  return GeneratePoisson(dataset, 30, /*rate=*/40.0, rng, 1);
}

TEST(FleetDifferentialTest, SingleReplicaFleetMatchesBareEngineByteForByte) {
  const EngineConfig config = FleetEngineConfig();

  Engine bare(config);
  for (Request& r : DifferentialTrace()) {
    bare.Submit(std::move(r));
  }
  bare.RunToCompletion();
  std::ostringstream bare_os;
  SerializeRun(bare, bare_os);

  FleetConfig fleet_config;
  fleet_config.num_replicas = 1;
  fleet_config.engine = config;
  fleet_config.policy = RoutePolicy::kPrefixAffinity;
  FleetRouter fleet(fleet_config);
  for (Request& r : DifferentialTrace()) {
    fleet.Submit(std::move(r));
  }
  fleet.RunToCompletion();
  std::ostringstream fleet_os;
  SerializeRun(fleet.replica(0), fleet_os);

  ASSERT_FALSE(bare_os.str().empty());
  EXPECT_EQ(bare_os.str(), fleet_os.str());
  EXPECT_EQ(Sha256Hex(bare_os.str()), Sha256Hex(fleet_os.str()));
}

// Same contract under the round-robin policy (trivially replica 0 at N=1) and with the
// detached-sink engine: installing no sink and installing the fleet's sink are equivalent.
TEST(FleetDifferentialTest, PolicyChoiceIsInvisibleAtOneReplica) {
  FleetConfig affinity;
  affinity.num_replicas = 1;
  affinity.engine = FleetEngineConfig();
  affinity.policy = RoutePolicy::kPrefixAffinity;
  FleetConfig rr = affinity;
  rr.policy = RoutePolicy::kRoundRobin;
  rr.seed = 99;  // Any seed mod 1 = slot 0.

  FleetRouter a(affinity);
  FleetRouter b(rr);
  for (Request& r : DifferentialTrace()) {
    a.Submit(std::move(r));
  }
  for (Request& r : DifferentialTrace()) {
    b.Submit(std::move(r));
  }
  a.RunToCompletion();
  b.RunToCompletion();
  std::ostringstream oa;
  std::ostringstream ob;
  SerializeRun(a.replica(0), oa);
  SerializeRun(b.replica(0), ob);
  EXPECT_EQ(Sha256Hex(oa.str()), Sha256Hex(ob.str()));
}

TEST(Sha256Test, Fips180KnownAnswers) {
  EXPECT_EQ(Sha256Hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256Hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // 64-byte message: exercises the exact-block tail-padding path (two final blocks).
  EXPECT_EQ(Sha256Hex(std::string(64, 'a')),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

}  // namespace
}  // namespace jenga
