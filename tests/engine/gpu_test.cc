#include "src/engine/gpu.h"

#include <gtest/gtest.h>

#include "src/model/model_zoo.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

TEST(GpuSpecs, PlatformConstants) {
  const GpuSpec h100 = H100();
  const GpuSpec l4 = L4();
  EXPECT_EQ(h100.memory_bytes, 80LL * 1024 * 1024 * 1024);
  EXPECT_EQ(l4.memory_bytes, 24LL * 1024 * 1024 * 1024);
  EXPECT_GT(h100.flops, l4.flops);
  EXPECT_GT(h100.mem_bandwidth, l4.mem_bandwidth);
  EXPECT_GT(h100.max_batched_tokens, 0);
}

TEST(GpuSim, KvPoolSubtractsWeightsAndReserved) {
  const ModelConfig model = Llama31_8B();
  GpuSim sim(H100(), model);
  EXPECT_EQ(sim.KvPoolBytes(),
            H100().memory_bytes - model.WeightBytes() - H100().reserved_bytes);
}

TEST(GpuSim, ModelTooLargeDies) {
  ModelConfig model = Llama3_70B_Fp8();
  model.params_b = 300.0;  // 300 GB of weights cannot fit in 80 GB.
  EXPECT_DEATH(GpuSim(H100(), model).KvPoolBytes(), "does not fit");
}

TEST(GpuSim, StepTimeScalesWithTokens) {
  GpuSim sim(H100(), Llama31_8B());
  const double t1 = sim.StepTime(1024, 0);
  const double t8 = sim.StepTime(8192, 0);
  EXPECT_GT(t8, t1);
  // Large prefills are compute-bound: ~linear in tokens.
  EXPECT_NEAR(t8 / t1, 8.0, 1.5);
}

TEST(GpuSim, DecodeStepIsWeightBandwidthBound) {
  GpuSim sim(H100(), Llama31_8B());
  // A tiny decode batch costs at least the weight-streaming time.
  const double weight_stream =
      static_cast<double>(Llama31_8B().WeightBytes()) / H100().mem_bandwidth;
  EXPECT_GE(sim.StepTime(1, 0), weight_stream);
  // Small batches ride the same weight stream: near-identical step time.
  EXPECT_NEAR(sim.StepTime(8, 0), sim.StepTime(1, 0), sim.StepTime(1, 0) * 0.05);
}

TEST(GpuSim, KvReadAddsBandwidthTime) {
  GpuSim sim(H100(), Llama31_8B());
  const double without = sim.StepTime(32, 0);
  const double with = sim.StepTime(32, 28LL << 30);
  EXPECT_NEAR(with - without, static_cast<double>(28LL << 30) / H100().mem_bandwidth, 1e-6);
}

TEST(GpuSim, BiggerModelIsSlower) {
  GpuSim small(H100(), Llama31_8B());
  GpuSim large(H100(), Llama3_70B_Fp8());
  EXPECT_GT(large.StepTime(8192, 0), small.StepTime(8192, 0));
}

TEST(GpuSim, VisionEncodeTime) {
  GpuSim sim(H100(), Llama32_11B_Vision());
  EXPECT_EQ(sim.VisionEncodeTime(0), 0.0);
  EXPECT_GT(sim.VisionEncodeTime(1601), 0.0);
  EXPECT_GT(sim.VisionEncodeTime(6404), sim.VisionEncodeTime(1601));
  // Text-only models have no encoder.
  GpuSim text(H100(), Llama31_8B());
  EXPECT_EQ(text.VisionEncodeTime(1000), 0.0);
}

}  // namespace
}  // namespace jenga
