// Perf-regression harness: measures allocator hot-path ops/sec (micro) and end-to-end
// engine steps/sec (macro, across heterogeneous zoo models), and emits a machine-readable
// JSON trajectory file. Run with --baseline <prior.json> to embed the prior run's numbers
// and per-metric speedups in the output — that file is committed as BENCH_perf.json so every
// PR carries the perf history of the §5.4 allocation path.
//
// Flags:
//   --quick            smaller iteration counts (CI-friendly; ratios remain meaningful)
//   --out <path>       output JSON path (default: BENCH_perf.json in the working directory)
//   --baseline <path>  prior bench_perf JSON; its "current" section becomes our "baseline"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fleet_bench.h"
#include "bench/frontend_bench.h"
#include "src/core/evictor.h"
#include "src/core/jenga_allocator.h"
#include "src/engine/engine.h"
#include "src/engine/kv_manager.h"
#include "src/metrics/step_profiler.h"
#include "src/model/kv_spec.h"
#include "src/model/model_zoo.h"
#include "src/offload/swap_manager.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// Prevents the compiler from eliding a measured computation.
volatile int64_t g_sink = 0;

// Two heterogeneous groups whose page sizes share a 12 KiB large page — the same shape the
// allocator microbenchmarks (bench_micro_allocator) use.
KvSpec TwoGroupSpec() {
  KvSpec spec;
  KvGroupSpec a;
  a.name = "a";
  a.kind = GroupKind::kFullAttention;
  a.num_layers = 2;
  a.bytes_per_token_per_layer = 128;
  a.tokens_per_page = 16;
  a.page_bytes = 4096;
  KvGroupSpec b = a;
  b.name = "b";
  b.num_layers = 3;
  b.page_bytes = 6144;
  spec.groups = {a, b};
  return spec;
}

// --- Micro: allocator hot paths (§5.4) ---

double MicroAllocRelease(int64_t iters) {
  JengaAllocator alloc(TwoGroupSpec(), 64LL << 20);
  Tick now = 0;
  const auto begin = Clock::now();
  for (int64_t i = 0; i < iters; ++i) {
    ++now;
    const auto page = alloc.group(0).Allocate(now % 8, now);
    alloc.group(0).Release(*page, false);
  }
  const auto end = Clock::now();
  return static_cast<double>(iters) / Seconds(begin, end);
}

double MicroAllocBurstFree(int64_t bursts) {
  constexpr int kBurst = 1024;
  JengaAllocator alloc(TwoGroupSpec(), 256LL << 20);
  std::vector<SmallPageId> pages;
  pages.reserve(kBurst);
  Tick now = 0;
  const auto begin = Clock::now();
  for (int64_t i = 0; i < bursts; ++i) {
    ++now;
    for (int j = 0; j < kBurst; ++j) {
      pages.push_back(*alloc.group(0).Allocate(now % 4, now));
    }
    for (const SmallPageId p : pages) {
      alloc.group(0).Release(p, false);
    }
    pages.clear();
  }
  const auto end = Clock::now();
  return static_cast<double>(bursts * kBurst) / Seconds(begin, end);
}

// Prefix-cache churn under a bounded pool: hash, release-to-cache, revive, rekey — the
// evictor-heavy path (Insert/Remove plus UpdateLastAccess/SetPrefixLength rekeys).
double MicroCacheChurn(int64_t iters) {
  JengaAllocator alloc(TwoGroupSpec(), 8LL << 20);
  Tick now = 0;
  BlockHash hash = 1;
  const auto begin = Clock::now();
  for (int64_t i = 0; i < iters; ++i) {
    ++now;
    const auto page = alloc.group(0).Allocate(now % 8, now);
    alloc.group(0).SetContentHash(*page, hash);
    alloc.group(0).UpdateLastAccess(*page, now);
    alloc.group(0).SetPrefixLength(*page, static_cast<int64_t>(hash % 512) * 16);
    alloc.group(0).Release(*page, /*keep_cached=*/true);
    if (i % 4 == 3) {
      // Revive a recently cached block (prefix hit) and drop it again.
      if (const auto hit = alloc.group(0).LookupCached(hash - 1)) {
        alloc.group(0).AddRef(*hit);
        alloc.group(0).UpdateLastAccess(*hit, ++now);
        alloc.group(0).Release(*hit, /*keep_cached=*/true);
      }
    }
    ++hash;
  }
  const auto end = Clock::now();
  return static_cast<double>(iters) / Seconds(begin, end);
}

// Prompt with deterministic all-text tokens; `tag` separates prefix classes.
Prompt ChurnPrompt(int tag, int len) {
  Prompt prompt;
  prompt.tokens.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    prompt.tokens.push_back(tag * 100000 + i);
  }
  return prompt;
}

// Cache churn seen through the full manager with the host offload tier attached: admission
// (§5.2 hit scan), allocation, hash registration, release-to-cache, with evictions spilling
// to the host pool and later admissions promoting host-resident pages back (PromoteHostHits).
// Counts admission cycles per second.
double MicroCacheChurnOffload(int64_t cycles) {
  const KvSpec spec = TwoGroupSpec();
  KvManager::Options options;
  options.tokens_per_page = 16;
  KvManager kv(spec, spec, 8LL << 20, options);
  OffloadConfig offload;
  offload.enabled = true;
  offload.host_pool_bytes = 4LL << 20;
  SwapCostParams cost;
  cost.flops_per_token = 1e9;
  cost.gpu_flops = 1e15;
  cost.gpu_mem_bandwidth = 3e12;
  cost.chunk_tokens = 512;
  SwapManager swap(offload, cost);
  kv.AttachOffload(&swap, 0);

  constexpr int kPrompts = 8;   // Shared prefix classes cycling through a pool ~3 requests wide.
  constexpr int kLen = 512;
  std::vector<Prompt> prompts;
  prompts.reserve(kPrompts);
  for (int p = 0; p < kPrompts; ++p) {
    prompts.push_back(ChurnPrompt(p, kLen));
  }
  Tick now = 0;
  const auto begin = Clock::now();
  for (int64_t i = 0; i < cycles; ++i) {
    Request r = MakeRequest(static_cast<RequestId>(i), prompts[static_cast<size_t>(i % kPrompts)],
                            /*output_len=*/1, 0.0);
    ++now;
    kv.OnAdmit(r, now);
    if (kv.AllocateForTokens(r, kLen - r.num_computed_tokens, now)) {
      r.num_computed_tokens = kLen;
      kv.OnStepComputed(r, now);
    }
    kv.Release(r, now, /*finished=*/true);
  }
  const auto end = Clock::now();
  return static_cast<double>(cycles) / Seconds(begin, end);
}

// The admission fast path itself: preempt → re-admit cycles of one long-prompt request.
// Memoized hash chains make each re-admission O(blocks) lookups instead of re-hashing the
// whole prompt per group. Counts re-admission cycles per second.
double MicroAdmissionReadmit(int64_t cycles) {
  const KvSpec spec = TwoGroupSpec();
  KvManager::Options options;
  options.tokens_per_page = 16;
  KvManager kv(spec, spec, 64LL << 20, options);
  constexpr int kLen = 4096;
  Request r = MakeRequest(/*id=*/7, ChurnPrompt(0, kLen), /*output_len=*/1, 0.0);
  Tick now = 0;
  const auto begin = Clock::now();
  for (int64_t i = 0; i < cycles; ++i) {
    ++now;
    kv.OnAdmit(r, now);
    if (kv.AllocateForTokens(r, kLen - r.num_computed_tokens, now)) {
      r.num_computed_tokens = kLen;
      kv.OnStepComputed(r, now);
    }
    kv.Release(r, now, /*finished=*/false);  // Preemption: the request id stays live.
  }
  const auto end = Clock::now();
  kv.OnRequestRetired(7);
  return static_cast<double>(cycles) / Seconds(begin, end);
}

// The eviction queue alone: steady-state rekeys with periodic pop/reinsert, over a resident
// set of 4096 pages (the §5.1 per-token bookkeeping).
double MicroEvictorChurn(int64_t iters) {
  constexpr int kPages = 4096;
  Evictor evictor;
  Tick now = 0;
  for (SmallPageId p = 0; p < kPages; ++p) {
    evictor.Insert(p, ++now, p % 257);
  }
  const auto begin = Clock::now();
  for (int64_t i = 0; i < iters; ++i) {
    ++now;
    evictor.UpdateLastAccess(i % kPages, now);
    if (i % 16 == 15) {
      const auto victim = evictor.PopVictim();
      evictor.Insert(*victim, now, static_cast<int64_t>(i % 509));
    }
  }
  const auto end = Clock::now();
  g_sink = g_sink + static_cast<int64_t>(evictor.size());
  return static_cast<double>(iters) / Seconds(begin, end);
}

// Pure page-metadata reads (state/last_access), the per-token lookup tax.
double MicroMetaReads(int64_t reads) {
  JengaAllocator alloc(TwoGroupSpec(), 64LL << 20);
  constexpr int kPages = 4096;
  std::vector<SmallPageId> pages;
  pages.reserve(kPages);
  Tick now = 0;
  for (int i = 0; i < kPages; ++i) {
    pages.push_back(*alloc.group(0).Allocate(i % 8, ++now));
  }
  int64_t sum = 0;
  const auto begin = Clock::now();
  for (int64_t i = 0; i < reads; ++i) {
    const SmallPageId page = pages[static_cast<size_t>(i % kPages)];
    sum += alloc.group(0).last_access(page);
    sum += static_cast<int64_t>(alloc.group(0).state(page));
  }
  const auto end = Clock::now();
  g_sink = g_sink + sum;
  for (const SmallPageId p : pages) {
    alloc.group(0).Release(p, false);
  }
  return static_cast<double>(reads) / Seconds(begin, end);
}

// One elastic resize cycle = GrowKvPool + ShrinkKvPool on a live engine — the audited
// runtime-repartitioning hot path (DESIGN.md §11): fault-site consult, LCM pool resize,
// free-tail drain, resize-ledger booking, and recovery-metric sync per call.
double MicroElasticResizeCycle(int64_t cycles) {
  EngineConfig config = FleetPerfConfig(1, RoutePolicy::kRoundRobin).engine;
  Engine engine(std::move(config));
  constexpr int32_t kPages = 8;
  const auto begin = Clock::now();
  for (int64_t i = 0; i < cycles; ++i) {
    g_sink = g_sink + engine.GrowKvPool(kPages);
    g_sink = g_sink + engine.ShrinkKvPool(kPages);
  }
  const auto end = Clock::now();
  return static_cast<double>(cycles) / Seconds(begin, end);
}

// Deadline bookkeeping alone: one long decode keeps the engine busy while 4k not-yet-
// arrived requests sit parked in the waiting queue with deadlines staggered one step
// apart (~1 expiry per step, so the heap fast path stays on). The legacy ExpireDeadlines
// rescanned both scheduler queues on every step that had any deadline in flight —
// O(requests) per step even when nothing expired; the heap is O(1) on a quiet step and
// O(log n) per expiry. Counts engine steps per second over the decode run.
double MicroDeadlineSweep(int64_t steps) {
  constexpr int kParked = 4096;
  const auto build = [steps](double horizon) {
    EngineConfig config = JengaProfile(Gemma2_9B(), H100());
    config.memory_sample_every = 0;
    auto engine = std::make_unique<Engine>(std::move(config));
    engine->Submit(MakeRequest(0, ChurnPrompt(0, 64), /*output_len=*/steps, 0.0));
    for (int i = 0; i < kParked; ++i) {
      Request r = MakeRequest(1 + i, ChurnPrompt(1 + i, 16), /*output_len=*/4,
                              /*arrival_time=*/1e9);
      // Spacing horizon/steps puts ~1 expiry per step; requests past the horizon expire in
      // one batch when the engine finally jumps toward the parked arrivals.
      r.deadline = horizon > 0
                       ? horizon * static_cast<double>(i + 1) / static_cast<double>(steps)
                       : 1e8;
      engine->Submit(std::move(r));
    }
    return engine;
  };
  // Probe pass: learn the decode run's simulated duration so the timed pass can stagger
  // deadlines across it. Deadlines sit far in the future here, so none expire mid-run.
  double horizon;
  {
    const auto probe = build(/*horizon=*/-1.0);
    probe->StepOnce();  // Admits the decode; the parked arrivals stay queued behind it.
    for (int64_t guard = 0; probe->num_running() > 0 && guard < 4 * steps + 64; ++guard) {
      probe->StepOnce();
    }
    horizon = probe->now();
  }
  const auto engine = build(horizon);
  const auto begin = Clock::now();
  engine->RunToCompletion();
  const auto end = Clock::now();
  g_sink = g_sink + engine->metrics().deadline_expirations;
  return static_cast<double>(engine->metrics().total_steps()) / Seconds(begin, end);
}

// --- Macro: end-to-end engine steps/sec across heterogeneous zoo models ---

struct E2eSpec {
  std::string key;
  ModelConfig model;
  std::vector<Request> requests;
};

std::vector<E2eSpec> MakeE2eSpecs(bool quick) {
  std::vector<E2eSpec> specs;
  {
    // Sliding-window model on long documents: window drops + heavy eviction churn.
    E2eSpec s{"ministral-8b.arxiv", Ministral8B(), {}};
    Rng rng(0xBE9C1);
    ArxivQaDataset dataset(/*articles=*/6, 30000, 60000, /*seed=*/0xBE9C1,
                           /*output_lo=*/64, /*output_hi=*/128);
    const int count = quick ? 4 : 12;
    for (int i = 0; i < count; ++i) {
      WorkloadItem item = dataset.SampleForArticle(i % 6, rng);
      s.requests.push_back(MakeRequest(i, std::move(item.prompt), item.output_len, 0.0));
    }
    specs.push_back(std::move(s));
  }
  {
    // Standard short-prompt serving with prefix caching.
    E2eSpec s{"gemma-2-9b.mmlu", Gemma2_9B(), {}};
    Rng rng(0xBE9C2);
    MmluProDataset dataset;
    s.requests = GenerateBatch(dataset, quick ? 32 : 128, rng);
    specs.push_back(std::move(s));
  }
  {
    // Multimodal: vision-embedding group + per-modality hashing.
    E2eSpec s{"mllama-11b-vision.mmmu", Llama32_11B_Vision(), {}};
    Rng rng(0xBE9C3);
    MmmuProDataset dataset(s.model.vision.tokens_per_image);
    s.requests = GenerateBatch(dataset, quick ? 12 : 48, rng);
    specs.push_back(std::move(s));
  }
  {
    // Hybrid Mamba/attention: checkpoint snapshots exercise allocate/hash/release cycles.
    E2eSpec s{"jamba-52b-fp8.mmlu", Jamba52B_Fp8(), {}};
    Rng rng(0xBE9C4);
    MmluProDataset dataset;
    s.requests = GenerateBatch(dataset, quick ? 32 : 128, rng);
    specs.push_back(std::move(s));
  }
  return specs;
}

struct E2eResult {
  int64_t steps = 0;
  double seconds = 0.0;
  double steps_per_s = 0.0;
  double step_p50_us = 0.0;
  double step_p95_us = 0.0;
};

E2eResult RunE2e(const E2eSpec& spec) {
  EngineConfig config = JengaProfile(spec.model, H100());
  config.memory_sample_every = 0;
  Engine engine(std::move(config));
  std::vector<double> step_seconds;
  step_seconds.reserve(1 << 16);
  const auto begin = Clock::now();
  for (const Request& r : spec.requests) {
    engine.Submit(r);
  }
  // Manual step loop (vs RunToCompletion) so each scheduler step gets a latency sample.
  auto last = Clock::now();
  for (int64_t guard = 0; guard < 2000000; ++guard) {
    if (!engine.StepOnce()) {
      break;
    }
    const auto stamp = Clock::now();
    step_seconds.push_back(Seconds(last, stamp));
    last = stamp;
  }
  const auto end = Clock::now();
  E2eResult result;
  result.steps = engine.metrics().total_steps();
  result.seconds = Seconds(begin, end);
  result.steps_per_s = static_cast<double>(result.steps) / result.seconds;
  if (!step_seconds.empty()) {
    std::sort(step_seconds.begin(), step_seconds.end());
    const auto pct = [&step_seconds](double q) {
      const size_t at = static_cast<size_t>(q * static_cast<double>(step_seconds.size() - 1));
      return step_seconds[at] * 1e6;
    };
    result.step_p50_us = pct(0.50);
    result.step_p95_us = pct(0.95);
  }
  return result;
}

// --- Profiled pass: per-phase step attribution (--profile / --profile-only) ---

// Runs a spec once more with the StepProfiler attached and emits per-phase share keys.
// Shares (percent of stepped wall time) rather than absolute ns: they are stable across
// machines, which is what the check.sh profile-smoke snapshot comparison needs.
void RunE2eProfiled(const E2eSpec& spec, std::map<std::string, double>& current) {
  EngineConfig config = JengaProfile(spec.model, H100());
  config.memory_sample_every = 0;
  Engine engine(std::move(config));
  StepProfiler profiler;
  engine.set_step_profiler(&profiler);
  for (const Request& r : spec.requests) {
    engine.Submit(r);
  }
  engine.RunToCompletion();

  const int64_t total_ns = profiler.total_ns();
  PrintRow({{34, "profiler." + spec.key},
            {10, FmtI(profiler.steps())},
            {12, Fmt("%.2fms", static_cast<double>(total_ns) * 1e-6)},
            {16, Fmt("%.1f ns/step",
                     profiler.steps() > 0
                         ? static_cast<double>(total_ns) / static_cast<double>(profiler.steps())
                         : 0.0)}});
  for (int p = 0; p < kNumStepPhases; ++p) {
    const auto phase = static_cast<StepPhase>(p);
    const double share_pct = profiler.PhaseShare(phase) * 100.0;
    current["profiler." + spec.key + "." + StepPhaseName(phase) + ".share_pct"] = share_pct;
    const StepProfiler::PhaseStats& stats = profiler.phase(phase);
    PrintRow({{34, std::string("  ") + StepPhaseName(phase)},
              {10, Fmt("%.1f%%", share_pct)},
              {12, Fmt("%.2fms", static_cast<double>(stats.ns) * 1e-6)},
              {16, FmtI(stats.calls) + " calls"}});
  }
}

// --- Minimal JSON plumbing (flat string→number maps; no external deps) ---

// Returns the body of the top-level `"name": { ... }` object, or the whole text when absent
// (so a hand-written flat baseline file also works).
std::string ExtractObject(const std::string& text, const std::string& name) {
  const std::string needle = "\"" + name + "\"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) {
    return text;
  }
  const size_t open = text.find('{', at);
  if (open == std::string::npos) {
    return text;
  }
  int depth = 0;
  for (size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') {
      ++depth;
    } else if (text[i] == '}') {
      --depth;
      if (depth == 0) {
        return text.substr(open + 1, i - open - 1);
      }
    }
  }
  return text;
}

std::map<std::string, double> ParseFlatNumbers(const std::string& body) {
  std::map<std::string, double> values;
  size_t pos = 0;
  while ((pos = body.find('"', pos)) != std::string::npos) {
    const size_t end_quote = body.find('"', pos + 1);
    if (end_quote == std::string::npos) {
      break;
    }
    const std::string key = body.substr(pos + 1, end_quote - pos - 1);
    size_t cursor = end_quote + 1;
    while (cursor < body.size() && (body[cursor] == ':' || body[cursor] == ' ')) {
      ++cursor;
    }
    char* parsed_end = nullptr;
    const double value = std::strtod(body.c_str() + cursor, &parsed_end);
    if (parsed_end != body.c_str() + cursor) {
      values[key] = value;
      pos = static_cast<size_t>(parsed_end - body.c_str());
    } else {
      pos = cursor;
    }
  }
  return values;
}

bool WriteJson(const std::string& path, const std::string& mode,
               const std::map<std::string, double>& baseline,
               const std::map<std::string, double>& current) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(1);
  const auto emit_map = [&out](const char* name, const std::map<std::string, double>& map) {
    out << "  \"" << name << "\": {\n";
    size_t i = 0;
    for (const auto& [key, value] : map) {
      out << "    \"" << key << "\": " << value << (++i < map.size() ? ",\n" : "\n");
    }
    out << "  }";
  };
  out << "{\n  \"bench\": \"bench_perf\",\n  \"mode\": \"" << mode << "\",\n";
  if (!baseline.empty()) {
    emit_map("baseline", baseline);
    out << ",\n";
  }
  emit_map("current", current);
  if (!baseline.empty()) {
    std::map<std::string, double> speedup;
    for (const auto& [key, value] : current) {
      const auto it = baseline.find(key);
      if (it != baseline.end() && it->second > 0) {
        speedup[key] = value / it->second;
      }
    }
    out << ",\n";
    out.precision(3);
    emit_map("speedup", speedup);
    out.precision(1);
  }
  out << "\n}\n";
  std::ofstream file(path);
  file << out.str();
  if (!file) {
    std::fprintf(stderr, "\nerror: could not write %s\n", path.c_str());
    return false;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

// Perf gate (check.sh): every micro.*, elastic.*, frontend.*, fleet.*, and e2e steps/s
// metric present in both runs must stay within `kGateTolerance` of the baseline. The micros
// and the elastic resize cycle are tight loops whose regressions are real, the frontend and
// e2e keys ride on min-over-runs committed floors (best-of-3 in check.sh absorbs load
// spikes), and the fleet hit rates are deterministic (seeded single-threaded router). E2e
// step latency percentiles (step_p50/p95_us) are reported but never gated: they are
// lower-is-better, so the floor rule would reject improvements.
constexpr double kGateTolerance = 0.90;

// profiler.* phase shares use a separate regression rule: a phase share may not blow up past
// `kProfileShareFactor`× its snapshot (with an absolute grace of kProfileShareGracePct to
// keep sub-percent phases from tripping on noise). Shares are ratios, so the 0.90 floor rule
// does not apply — a share that *shrinks* is an improvement in whatever grew instead.
constexpr double kProfileShareFactor = 3.0;
constexpr double kProfileShareGracePct = 2.0;

bool IsGatedKey(const std::string& key) {
  if (key.rfind("e2e.", 0) == 0) {
    constexpr const char* kSuffix = ".steps_per_s";
    return key.size() > std::strlen(kSuffix) &&
           key.compare(key.size() - std::strlen(kSuffix), std::string::npos, kSuffix) == 0;
  }
  return key.rfind("micro.", 0) == 0 || key.rfind("elastic.", 0) == 0 ||
         key.rfind("frontend.", 0) == 0 || key.rfind("fleet.", 0) == 0;
}

bool IsProfileKey(const std::string& key) { return key.rfind("profiler.", 0) == 0; }

// Key family = prefix up to the first '.' ("micro", "e2e", "profiler", ...).
std::string KeyFamily(const std::string& key) { return key.substr(0, key.find('.')); }

bool GatePasses(const std::map<std::string, double>& baseline,
                const std::map<std::string, double>& current) {
  bool ok = true;
  for (const auto& [key, base] : baseline) {
    const auto it = current.find(key);
    if (IsProfileKey(key)) {
      // Phase-share regression: only checked when this run produced profiler keys at all
      // (the plain perf-gate stage runs without --profile; profile-smoke covers these).
      if (it == current.end()) {
        continue;
      }
      const double limit = std::max(base * kProfileShareFactor, base + kProfileShareGracePct);
      if (it->second > limit) {
        std::printf("gate: FAIL %s share %.1f%% -> %.1f%% (> %.1f%% = max(%gx, +%gpp))\n",
                    key.c_str(), base, it->second, limit, kProfileShareFactor,
                    kProfileShareGracePct);
        ok = false;
      }
      continue;
    }
    if (!IsGatedKey(key) || base <= 0) {
      continue;
    }
    if (it == current.end()) {
      std::printf("gate: MISSING %s (present in baseline)\n", key.c_str());
      ok = false;
      continue;
    }
    const double ratio = it->second / base;
    if (ratio < kGateTolerance) {
      std::printf("gate: FAIL %s %.3g -> %.3g (%.2fx < %.2fx)\n", key.c_str(), base, it->second,
                  ratio, kGateTolerance);
      ok = false;
    }
  }
  // Stale-schema guard: a gated metric the bench now produces but the committed baseline
  // lacks means the baseline predates the metric — the gate would silently not cover it.
  // Fail loudly with the regeneration hint instead of passing vacuously.
  for (const auto& [key, value] : current) {
    (void)value;
    if ((IsGatedKey(key) || IsProfileKey(key)) && baseline.find(key) == baseline.end()) {
      std::printf("gate: STALE baseline schema — %s is not in the baseline; regenerate it "
                  "(bench_perf --profile --quick --out BENCH_perf_quick.json) and commit\n",
                  key.c_str());
      ok = false;
    }
  }
  // Family guard: a baseline missing a whole key family the bench currently emits (e.g. a
  // hand-pruned file, or one predating the e2e./profiler. families) used to pass silently
  // because the per-key stale check above only covers gated keys. Any emitted family must
  // have at least one baseline entry.
  for (const auto& [key, value] : current) {
    (void)value;
    const std::string family = KeyFamily(key);
    bool found = false;
    for (auto it = baseline.lower_bound(family); it != baseline.end(); ++it) {
      if (KeyFamily(it->first) != family) {
        break;
      }
      found = true;
      break;
    }
    if (!found) {
      std::printf("gate: FAIL baseline has no %s.* keys but the bench emits them; regenerate "
                  "the baseline (bench_perf --profile --quick --out BENCH_perf_quick.json)\n",
                  family.c_str());
      ok = false;
    }
  }
  std::printf("gate: %s\n", ok ? "PASS" : "FAIL");
  return ok;
}

// profile: 0 = off, 1 = profiled pass after the standard suite (--profile),
//          2 = profiled pass only (--profile-only; skips micros/frontend/fleet/e2e timing).
bool Run(bool quick, bool gate, int profile, const std::string& out_path,
         const std::string& baseline_path) {
  PrintHeader(std::string("bench_perf: allocator + engine hot-path trajectory (") +
              (quick ? "quick" : "full") + " mode)");
  std::map<std::string, double> current;

  if (profile == 2) {
    PrintRow({{34, "step profiler (exclusive time)"},
              {10, "steps"},
              {14, "ns/step"}});
    PrintRule();
    for (const E2eSpec& spec : MakeE2eSpecs(quick)) {
      RunE2eProfiled(spec, current);
    }
    std::map<std::string, double> baseline;
    if (!baseline_path.empty()) {
      std::ifstream file(baseline_path);
      if (file) {
        std::ostringstream text;
        text << file.rdbuf();
        baseline = ParseFlatNumbers(ExtractObject(text.str(), "current"));
      }
    }
    if (!WriteJson(out_path, quick ? "quick" : "full", baseline, current)) {
      return false;
    }
    if (gate) {
      if (baseline.empty()) {
        std::printf("gate: FAIL (no readable baseline at %s)\n", baseline_path.c_str());
        return false;
      }
      // Profile-only emits a single family; the full-suite family/stale guards would demand
      // micros we deliberately skipped, so gate just the profiler share rule here.
      bool ok = true;
      for (const auto& [key, share] : current) {
        const auto it = baseline.find(key);
        if (it == baseline.end()) {
          std::printf("gate: STALE baseline schema — %s is not in the baseline; regenerate "
                      "the snapshot (bench_perf --profile --quick) and commit\n",
                      key.c_str());
          ok = false;
          continue;
        }
        const double limit =
            std::max(it->second * kProfileShareFactor, it->second + kProfileShareGracePct);
        if (share > limit) {
          std::printf("gate: FAIL %s share %.1f%% -> %.1f%% (> %.1f%%)\n", key.c_str(),
                      it->second, share, limit);
          ok = false;
        }
      }
      std::printf("gate: %s\n", ok ? "PASS" : "FAIL");
      return ok;
    }
    return true;
  }

  PrintRow({{34, "micro benchmark"}, {16, "ops/sec"}});
  PrintRule();
  const int64_t scale = quick ? 1 : 8;
  const struct {
    const char* key;
    double ops_per_s;
  } micros[] = {
      {"micro.alloc_release.ops_per_s", MicroAllocRelease(125000 * scale)},
      {"micro.alloc_burst_free.ops_per_s", MicroAllocBurstFree(64 * scale)},
      {"micro.cache_churn.ops_per_s", MicroCacheChurn(125000 * scale)},
      {"micro.cache_churn_offload.ops_per_s", MicroCacheChurnOffload(1500 * scale)},
      {"micro.admission_readmit.ops_per_s", MicroAdmissionReadmit(1500 * scale)},
      {"micro.evictor_churn.ops_per_s", MicroEvictorChurn(250000 * scale)},
      {"micro.meta_reads.ops_per_s", MicroMetaReads(1250000 * scale)},
      {"micro.deadline_sweep.steps_per_s", MicroDeadlineSweep(512 * scale)},
      {"elastic.resize_cycle.ops_per_s", MicroElasticResizeCycle(25000 * scale)},
  };
  for (const auto& micro : micros) {
    current[micro.key] = micro.ops_per_s;
    PrintRow({{34, micro.key}, {16, Fmt("%.3g", micro.ops_per_s)}});
  }

  std::printf("\n");
  PrintRow({{34, "frontend (closed loop, think 200us)"}, {16, "req/sec"}});
  PrintRule();
  {
    // Best-of-3: threaded wall-clock numbers are noisy on a loaded box; the best run is the
    // least-disturbed one. The committed quick baseline uses min-over-runs floors, so the
    // gate tolerance still has real margin.
    const int per_producer = quick ? 16 : 32;
    double rps_1p = 0.0;
    double rps_4p = 0.0;
    for (int trial = 0; trial < 3; ++trial) {
      rps_1p = std::max(rps_1p, RunClosedLoop(1, per_producer).requests_per_s);
      rps_4p = std::max(rps_4p, RunClosedLoop(4, per_producer).requests_per_s);
    }
    current["frontend.admit_1p.req_per_s"] = rps_1p;
    current["frontend.admit_4p.req_per_s"] = rps_4p;
    current["frontend.scaling_4p_over_1p"] = rps_1p > 0 ? rps_4p / rps_1p : 0.0;
    PrintRow({{34, "frontend.admit_1p.req_per_s"}, {16, Fmt("%.3g", rps_1p)}});
    PrintRow({{34, "frontend.admit_4p.req_per_s"}, {16, Fmt("%.3g", rps_4p)}});
    PrintRow({{34, "frontend.scaling_4p_over_1p"},
              {16, Fmt("%.2fx", current["frontend.scaling_4p_over_1p"])}});
  }

  std::printf("\n");
  PrintRow({{34, "fleet (4 replicas, tiny model)"}, {16, "value"}});
  PrintRule();
  {
    const double route_ops = FleetRouteOpsPerSecond(quick ? 20000 : 100000);
    const int requests = quick ? 48 : 96;
    const double affinity_hit =
        FleetPerfHitRate(4, RoutePolicy::kPrefixAffinity, requests);
    const double rr_hit = FleetPerfHitRate(4, RoutePolicy::kRoundRobin, requests);
    // Hit rates ship as percents: the JSON writer emits one decimal place, and 34.9 keeps
    // gate resolution where 0.3 would not.
    current["fleet.route_4r.ops_per_s"] = route_ops;
    current["fleet.affinity_4r.hit_pct"] = affinity_hit * 100.0;
    current["fleet.rr_4r.hit_pct"] = rr_hit * 100.0;
    current["fleet.hit_ratio_4r"] = rr_hit > 0 ? affinity_hit / rr_hit : 0.0;
    PrintRow({{34, "fleet.route_4r.ops_per_s"}, {16, Fmt("%.3g", route_ops)}});
    PrintRow({{34, "fleet.affinity_4r.hit_pct"}, {16, Pct(affinity_hit)}});
    PrintRow({{34, "fleet.rr_4r.hit_pct"}, {16, Pct(rr_hit)}});
    PrintRow({{34, "fleet.hit_ratio_4r"}, {16, Fmt("%.2fx", current["fleet.hit_ratio_4r"])}});
  }

  std::printf("\n");
  PrintRow({{34, "end-to-end (Jenga profile, H100)"},
            {10, "steps"},
            {12, "wall"},
            {16, "steps/sec"}});
  PrintRule();
  for (const E2eSpec& spec : MakeE2eSpecs(quick)) {
    const E2eResult result = RunE2e(spec);
    current["e2e." + spec.key + ".steps_per_s"] = result.steps_per_s;
    current["e2e." + spec.key + ".step_p50_us"] = result.step_p50_us;
    current["e2e." + spec.key + ".step_p95_us"] = result.step_p95_us;
    PrintRow({{34, spec.key},
              {10, FmtI(result.steps)},
              {12, Fmt("%.2fs", result.seconds)},
              {16, Fmt("%.1f", result.steps_per_s)},
              {20, "p50/p95 " + Fmt("%.0f/", result.step_p50_us) +
                       Fmt("%.0fus", result.step_p95_us)}});
  }

  if (profile == 1) {
    std::printf("\n");
    PrintRow({{34, "step profiler (exclusive time)"},
              {10, "steps"},
              {14, "ns/step"}});
    PrintRule();
    for (const E2eSpec& spec : MakeE2eSpecs(quick)) {
      RunE2eProfiled(spec, current);
    }
  }

  std::map<std::string, double> baseline;
  if (!baseline_path.empty()) {
    std::ifstream file(baseline_path);
    if (file) {
      std::ostringstream text;
      text << file.rdbuf();
      baseline = ParseFlatNumbers(ExtractObject(text.str(), "current"));
      std::printf("\nbaseline: %s\n", baseline_path.c_str());
      PrintRow({{34, "metric"}, {16, "baseline"}, {16, "current"}, {10, "speedup"}});
      PrintRule();
      for (const auto& [key, value] : current) {
        const auto it = baseline.find(key);
        if (it != baseline.end() && it->second > 0) {
          PrintRow({{34, key},
                    {16, Fmt("%.3g", it->second)},
                    {16, Fmt("%.3g", value)},
                    {10, Fmt("%.2fx", value / it->second)}});
        }
      }
    } else {
      std::printf("\nwarning: baseline file %s not readable; emitting current only\n",
                  baseline_path.c_str());
    }
  }

  if (!WriteJson(out_path, quick ? "quick" : "full", baseline, current)) {
    return false;
  }
  if (gate) {
    if (baseline.empty()) {
      std::printf("gate: FAIL (no readable baseline at %s)\n", baseline_path.c_str());
      return false;
    }
    return GatePasses(baseline, current);
  }
  return true;
}

}  // namespace
}  // namespace jenga

int main(int argc, char** argv) {
  bool quick = false;
  bool gate = false;
  int profile = 0;
  std::string out_path = "BENCH_perf.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--gate") == 0) {
      gate = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = 1;
    } else if (std::strcmp(argv[i], "--profile-only") == 0) {
      profile = 2;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--gate] [--profile|--profile-only] [--out path] "
                   "[--baseline path]\n",
                   argv[0]);
      return 2;
    }
  }
  return jenga::Run(quick, gate, profile, out_path, baseline_path) ? 0 : 1;
}
