
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig17_prefix_caching.cc" "bench/CMakeFiles/bench_fig17_prefix_caching.dir/bench_fig17_prefix_caching.cc.o" "gcc" "bench/CMakeFiles/bench_fig17_prefix_caching.dir/bench_fig17_prefix_caching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/engine/CMakeFiles/jenga_engine.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/jenga_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/metrics/CMakeFiles/jenga_metrics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/baseline/CMakeFiles/jenga_baseline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/jenga_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/model/CMakeFiles/jenga_model.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/jenga_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
