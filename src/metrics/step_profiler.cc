#include "src/metrics/step_profiler.h"

#include <chrono>

#include "src/common/check.h"

namespace jenga {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* StepPhaseName(StepPhase phase) {
  switch (phase) {
    case StepPhase::kHookDispatch:
      return "hook_dispatch";
    case StepPhase::kDeadlineExpiry:
      return "deadline_expiry";
    case StepPhase::kSchedule:
      return "schedule";
    case StepPhase::kHitScan:
      return "hit_scan";
    case StepPhase::kAllocate:
      return "allocate";
    case StepPhase::kShedGate:
      return "shed_gate";
    case StepPhase::kGpuSim:
      return "gpu_sim";
    case StepPhase::kEvictPreempt:
      return "evict_preempt";
    case StepPhase::kCommit:
      return "commit";
    case StepPhase::kOther:
      return "other";
  }
  return "unknown";
}

void StepProfiler::BeginStep() {
  JENGA_CHECK(!in_step_) << "StepScope brackets must not nest";
  JENGA_CHECK_EQ(depth_, 0);
  in_step_ = true;
  mark_ns_ = NowNs();
}

void StepProfiler::EndStep() {
  JENGA_CHECK(in_step_);
  JENGA_CHECK_EQ(depth_, 0) << "a phase Scope outlived its step";
  Charge(NowNs());  // Trailing remainder → kOther.
  in_step_ = false;
  steps_ += 1;
}

void StepProfiler::Reset() {
  JENGA_CHECK(!in_step_);
  JENGA_CHECK_EQ(depth_, 0);
  phases_ = {};
  steps_ = 0;
  mark_ns_ = 0;
}

// Charges [mark_ns_, now_ns) to the innermost open scope, or to kOther when between scopes
// inside a step. Outside a step with no open scope there is nothing to attribute (the gap
// between steps belongs to the caller, not the engine).
void StepProfiler::Charge(int64_t now_ns) {
  if (depth_ > 0) {
    phases_[static_cast<size_t>(stack_[static_cast<size_t>(depth_ - 1)])].ns += now_ns - mark_ns_;
  } else if (in_step_) {
    phases_[static_cast<size_t>(StepPhase::kOther)].ns += now_ns - mark_ns_;
  }
  mark_ns_ = now_ns;
}

void StepProfiler::Push(StepPhase phase) {
  JENGA_CHECK_LT(depth_, kMaxDepth);
  Charge(NowNs());
  stack_[static_cast<size_t>(depth_)] = phase;
  depth_ += 1;
  phases_[static_cast<size_t>(phase)].calls += 1;
}

void StepProfiler::Pop() {
  JENGA_CHECK_GT(depth_, 0);
  Charge(NowNs());
  depth_ -= 1;
}

int64_t StepProfiler::total_ns() const {
  int64_t total = 0;
  for (const PhaseStats& stats : phases_) {
    total += stats.ns;
  }
  return total;
}

double StepProfiler::PhaseShare(StepPhase p) const {
  const int64_t total = total_ns();
  if (total <= 0) {
    return 0.0;
  }
  return static_cast<double>(phase(p).ns) / static_cast<double>(total);
}

}  // namespace jenga
