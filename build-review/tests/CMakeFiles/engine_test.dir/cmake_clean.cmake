file(REMOVE_RECURSE
  "CMakeFiles/engine_test.dir/engine/engine_profiles_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/engine_profiles_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/engine_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/engine_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/gpu_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/gpu_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/kv_manager_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/kv_manager_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/metrics_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/metrics_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/multimodal_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/multimodal_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/prefix_cache_integration_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/prefix_cache_integration_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/spec_decode_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/spec_decode_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/zoo_smoke_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/zoo_smoke_test.cc.o.d"
  "engine_test"
  "engine_test.pdb"
  "engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
