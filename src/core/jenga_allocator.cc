#include "src/core/jenga_allocator.h"

#include <algorithm>

#include "src/common/check.h"

namespace jenga {

JengaAllocator::JengaAllocator(KvSpec spec, int64_t pool_bytes, int64_t large_page_bytes_override,
                               int shards)
    : spec_(std::move(spec)),
      lcm_(pool_bytes,
           large_page_bytes_override > 0 ? large_page_bytes_override : spec_.LcmPageBytes()) {
  groups_.reserve(spec_.groups.size());
  for (size_t i = 0; i < spec_.groups.size(); ++i) {
    groups_.push_back(std::make_unique<SmallPageAllocator>(static_cast<int>(i), spec_.groups[i],
                                                           &lcm_, this, shards));
  }
}

void JengaAllocator::PushReclaim(ReclaimEntry entry) {
  reclaim_heap_.push_back(entry);
  std::push_heap(reclaim_heap_.begin(), reclaim_heap_.end());
}

JengaAllocator::ReclaimEntry JengaAllocator::PopReclaim() {
  const ReclaimEntry top = reclaim_heap_.front();
  std::pop_heap(reclaim_heap_.begin(), reclaim_heap_.end());
  reclaim_heap_.pop_back();
  return top;
}

std::optional<LargePageId> JengaAllocator::AcquireLargePage(int group_index) {
  if (const auto page = lcm_.Allocate(group_index)) {
    return page;
  }
  // Step 3 of §5.4: evict the evictable large page with the earliest (max-of-slots)
  // last-access time, across all groups. The heap is lazy: entries are revalidated against
  // the owning group and re-pushed when their timestamp moved forward.
  while (!reclaim_heap_.empty()) {
    const ReclaimEntry top = PopReclaim();
    SmallPageAllocator& owner = *groups_[static_cast<size_t>(top.group)];
    if (!owner.IsReclaimCandidate(top.large)) {
      continue;  // Became used, was reclaimed, or was returned already.
    }
    const Tick current = owner.ReclaimTimestamp(top.large);
    if (current != top.timestamp) {
      PushReclaim({current, top.group, top.large});
      JENGA_AUDIT_HOOK(audit_, OnReclaimPushed(top.group, top.large, current));
      continue;
    }
    JENGA_AUDIT_HOOK(audit_, OnLargeReclaimed(top.group, top.large));
    owner.ReclaimLargePage(top.large);
    return lcm_.Allocate(group_index);
  }
  return std::nullopt;
}

void JengaAllocator::OnReclaimCandidate(int group_index, LargePageId large, Tick timestamp) {
  PushReclaim({timestamp, group_index, large});
  JENGA_AUDIT_HOOK(audit_, OnReclaimPushed(group_index, large, timestamp));
}

void JengaAllocator::GrowPool(int32_t pages) {
  JENGA_CHECK_GT(pages, 0);
  for (const auto& group : groups_) {
    JENGA_CHECK_EQ(group->shards(), 1) << "pool resize requires the deterministic mode";
  }
  lcm_.GrowPages(pages);
  for (const auto& group : groups_) {
    group->OnPoolResized(lcm_.num_pages());
  }
  JENGA_AUDIT_HOOK(audit_, OnPoolResized(lcm_.num_pages()));
}

int32_t JengaAllocator::ShrinkPool(int32_t pages) {
  JENGA_CHECK_GT(pages, 0);
  for (const auto& group : groups_) {
    JENGA_CHECK_EQ(group->shards(), 1) << "pool resize requires the deterministic mode";
  }
  int32_t removable = 0;
  while (removable < pages) {
    const LargePageId page = lcm_.num_pages() - 1 - removable;
    if (page < 0) {
      break;
    }
    const int owner = lcm_.owner(page);
    if (owner < 0) {
      removable += 1;
      continue;
    }
    SmallPageAllocator& group = *groups_[static_cast<size_t>(owner)];
    if (!group.IsReclaimCandidate(page)) {
      break;  // Used slots pin the page; the id space must stay dense, so stop here.
    }
    JENGA_AUDIT_HOOK(audit_, OnLargeReclaimed(owner, page));
    group.ReclaimLargePage(page);
    removable += 1;
  }
  if (removable == 0) {
    return 0;
  }
  lcm_.ShrinkPages(removable);
  for (const auto& group : groups_) {
    group->OnPoolResized(lcm_.num_pages());
  }
  JENGA_AUDIT_HOOK(audit_, OnPoolResized(lcm_.num_pages()));
  return removable;
}

int32_t JengaAllocator::ShrinkablePages(int32_t pages) const {
  int32_t removable = 0;
  while (removable < pages) {
    const LargePageId page = lcm_.num_pages() - 1 - removable;
    if (page < 0) {
      break;
    }
    const int owner = lcm_.owner(page);
    if (owner >= 0 && !groups_[static_cast<size_t>(owner)]->IsReclaimCandidate(page)) {
      break;
    }
    removable += 1;
  }
  return removable;
}

void JengaAllocator::ForgetRequest(RequestId request) {
  for (const auto& group : groups_) {
    group->ForgetRequest(request);
  }
}

void JengaAllocator::SetEvictionSink(CacheEvictionSink* sink) {
  for (const auto& group : groups_) {
    group->set_eviction_sink(sink);
  }
}

void JengaAllocator::SetResidencySink(CacheResidencySink* sink) {
  for (const auto& group : groups_) {
    group->set_residency_sink(sink);
  }
}

void JengaAllocator::SetAuditSink(AuditSink* sink) {
  audit_ = sink;
  for (const auto& group : groups_) {
    group->set_audit_sink(sink);
  }
}

int64_t JengaAllocator::FreeSmallPages(int group_index) const {
  const SmallPageAllocator& group = *groups_[static_cast<size_t>(group_index)];
  return static_cast<int64_t>(lcm_.num_free()) * group.pages_per_large() +
         group.GetStats().empty_pages;
}

int64_t JengaAllocator::AvailableSmallPages(int group_index) const {
  // Evictable capacity: this group's evictable smalls are directly reusable (step 5), and
  // whole evictable large pages of *other* groups can be reclaimed (step 3). A conservative
  // estimate counts every group's evictable pages scaled into this group's page size.
  const SmallPageAllocator& target = *groups_[static_cast<size_t>(group_index)];
  int64_t evictable_bytes = 0;
  for (const auto& group : groups_) {
    evictable_bytes += group->GetStats().evictable_bytes;
  }
  return FreeSmallPages(group_index) + evictable_bytes / target.page_bytes();
}

JengaAllocator::MemoryBreakdown JengaAllocator::GetBreakdown() const {
  MemoryBreakdown breakdown;
  breakdown.pool_bytes =
      static_cast<int64_t>(lcm_.num_pages()) * lcm_.large_page_bytes() + lcm_.slack_bytes();
  breakdown.allocated_bytes =
      static_cast<int64_t>(lcm_.num_allocated()) * lcm_.large_page_bytes();
  for (const auto& group : groups_) {
    const SmallPageAllocator::Stats stats = group->GetStats();
    breakdown.used_bytes += stats.used_bytes;
    breakdown.evictable_bytes += stats.evictable_bytes;
    breakdown.empty_bytes += stats.empty_bytes;
  }
  breakdown.unallocated_bytes =
      static_cast<int64_t>(lcm_.num_free()) * lcm_.large_page_bytes() + lcm_.slack_bytes();
  return breakdown;
}

void JengaAllocator::CheckConsistency() const {
  int64_t held = 0;
  for (const auto& group : groups_) {
    group->CheckConsistency();
    held += group->GetStats().large_pages_held;
  }
  JENGA_CHECK_EQ(held, lcm_.num_allocated());
  const MemoryBreakdown breakdown = GetBreakdown();
  JENGA_CHECK_EQ(breakdown.allocated_bytes,
                 breakdown.used_bytes + breakdown.evictable_bytes + breakdown.empty_bytes);
}

}  // namespace jenga
