# Empty dependencies file for bench_sec44_page_size.
# This may be replaced when dependencies are built.
