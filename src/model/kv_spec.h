// Derivation of KV-cache *groups* from a model architecture. A group is a set of layers that
// share per-token state size, token-dependency pattern, and caching policy; each group gets
// its own customized small-page allocator in the two-level scheme (§4.1). The derived KvSpec
// is the contract between the model layer and the memory manager: the manager never looks at
// the model again.

#ifndef JENGA_SRC_MODEL_KV_SPEC_H_
#define JENGA_SRC_MODEL_KV_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/model_config.h"

namespace jenga {

// What a KV group stores state for. Self-attention covers every decoder-sequence token;
// cross-attention KV and vision embeddings exist only for image tokens; in cross-attention
// VLMs (mllama/NVLM style) the decoder sequence holds only the *text* tokens — image tokens
// live exclusively in the encoder KV, which is why the paper's ideal for mllama is
// T·32 + I·8 rather than (T+I)·32 (§3.2). Mamba state is per-sequence.
enum class GroupScope {
  kAllTokens,
  kTextTokens,
  kImageTokens,
  kPerSequence,
};

// The memory-management "type" of a group. Mirrors LayerKind plus the vision-embedding cache,
// which the paper treats as "another type of layer with a specific hidden size" (§6.2).
enum class GroupKind {
  kFullAttention,
  kSlidingWindow,
  kMamba,
  kCrossAttention,
  kSparsePyramid,
  kVisionEmbed,
};

[[nodiscard]] const char* GroupKindName(GroupKind kind);

// One KV-cache group: the unit at which Jenga instantiates a customized allocator + evictor.
struct KvGroupSpec {
  std::string name;
  GroupKind kind = GroupKind::kFullAttention;
  GroupScope scope = GroupScope::kAllTokens;
  // Number of distinct-KV layers folded into this group.
  int num_layers = 0;
  // Per-token KV bytes per layer (attention-like groups; 0 for Mamba / vision).
  int64_t bytes_per_token_per_layer = 0;
  // Tokens covered by one small page (the block size); 0 for per-sequence Mamba pages.
  int tokens_per_page = 0;
  // Small-page size in bytes: tokens_per_page × bytes/token × num_layers for attention-like
  // groups; the full multi-layer recurrent state for Mamba groups.
  int64_t page_bytes = 0;
  // Window length (kSlidingWindow groups).
  int sliding_window = 0;
  // Retained-token budget (kSparsePyramid groups).
  int token_budget = 0;

  // Bytes one token contributes to this group (all layers of the group); 0 for Mamba.
  [[nodiscard]] int64_t BytesPerToken() const {
    return bytes_per_token_per_layer * num_layers;
  }
};

// The complete KV-memory contract for a model (or a set of co-served models): all groups plus
// the compatible page sizes of the §4.4 design space.
struct KvSpec {
  std::vector<KvGroupSpec> groups;

  [[nodiscard]] int64_t LcmPageBytes() const;  // Jenga's choice.
  [[nodiscard]] int64_t GcdPageBytes() const;  // §4.4 ablation.
  [[nodiscard]] int64_t MaxPageBytes() const;  // §4.4 ablation.

  [[nodiscard]] const KvGroupSpec* FindGroup(GroupKind kind) const;
  [[nodiscard]] std::string DebugString() const;
};

struct KvSpecOptions {
  int tokens_per_page = 16;
  // Whether to expose the vision-embedding cache as a group (Jenga does; baselines do not).
  bool include_vision_group = true;
};

// Derives the group decomposition for one model. Layers are grouped by
// (kind, per-token size, window/budget); all Mamba layers merge into one per-sequence group.
[[nodiscard]] KvSpec BuildKvSpec(const ModelConfig& model, const KvSpecOptions& options);

// Merges the specs of several co-served models (speculative decoding, multi-model serving,
// §6.1) into one spec with a shared compatible page size. Group names are prefixed with the
// model tags so allocators stay distinct.
[[nodiscard]] KvSpec MergeKvSpecs(const std::vector<std::pair<std::string, KvSpec>>& specs);

}  // namespace jenga

#endif  // JENGA_SRC_MODEL_KV_SPEC_H_
