file(REMOVE_RECURSE
  "libjenga_workload.a"
)
