#include "src/cluster/cluster_metrics.h"

#include <gtest/gtest.h>

#include "src/cluster/fleet_router.h"
#include "src/metrics/metrics.h"
#include "tests/cluster/fleet_test_util.h"

namespace jenga {
namespace {

RequestRecord Record(int64_t id, double arrival, double ttft_delta, double finish,
                     int64_t output_len = 8) {
  RequestRecord r;
  r.id = id;
  r.prompt_len = 32;
  r.output_len = output_len;
  r.arrival_time = arrival;
  r.first_scheduled_time = arrival;
  r.first_token_time = arrival + ttft_delta;
  r.finish_time = finish;
  return r;
}

TEST(ClusterMetricsTest, PoolsPercentilesAcrossReplicas) {
  // 60/40 split keeps p50 strictly inside the fast half (Percentile interpolates between
  // order statistics, so an even split would land midway between the two modes).
  EngineMetrics fast;
  for (int i = 0; i < 60; ++i) {
    fast.RecordFinished(Record(i, 0.0, 0.010, 1.0));
  }
  fast.cache_hit_tokens = 90;
  fast.prefill_tokens_computed = 10;

  EngineMetrics slow;
  for (int i = 0; i < 40; ++i) {
    slow.RecordFinished(Record(100 + i, 0.0, 0.100, 2.0));
  }
  slow.cache_hit_tokens = 10;
  slow.prefill_tokens_computed = 90;

  ClusterMetrics cluster;
  cluster.AddReplica(fast, /*occupancy=*/0.25);
  cluster.AddReplica(slow, /*occupancy=*/0.75);
  const FleetStats stats = cluster.Summarize();

  EXPECT_EQ(stats.completed, 100);
  EXPECT_EQ(stats.failed, 0);
  ASSERT_EQ(stats.replicas.size(), 2u);
  EXPECT_DOUBLE_EQ(stats.replicas[0].hit_rate, 0.9);
  EXPECT_DOUBLE_EQ(stats.replicas[1].hit_rate, 0.1);
  EXPECT_DOUBLE_EQ(stats.replicas[0].occupancy, 0.25);
  // Cluster hit rate pools tokens, not replica averages: (90+10)/(100+100).
  EXPECT_DOUBLE_EQ(stats.hit_rate, 0.5);
  // p50 sits in the fast half, p99 in the slow half of the pooled population.
  EXPECT_NEAR(stats.ttft_p50, 0.010, 1e-9);
  EXPECT_NEAR(stats.ttft_p99, 0.100, 1e-9);
  EXPECT_LE(stats.ttft_p50, stats.ttft_p99);
  EXPECT_LE(stats.tpot_p50, stats.tpot_p99);
  EXPECT_FALSE(stats.DebugString().empty());
}

TEST(ClusterMetricsTest, SkipsFailedRequestsAndHandlesEmpty) {
  EngineMetrics metrics;
  RequestRecord failed = Record(1, 0.0, 0.5, 1.0);
  failed.failed = true;
  metrics.RecordFinished(failed);

  ClusterMetrics cluster;
  cluster.AddReplica(metrics, 0.0);
  const FleetStats stats = cluster.Summarize();
  EXPECT_EQ(stats.completed, 0);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_DOUBLE_EQ(stats.ttft_p50, 0.0);
  EXPECT_DOUBLE_EQ(stats.ttft_p99, 0.0);
  EXPECT_DOUBLE_EQ(stats.hit_rate, 0.0);
}

TEST(ClusterMetricsTest, FromRouterSnapshotsEveryReplica) {
  FleetRouter fleet(TestFleetConfig(2, RoutePolicy::kRoundRobin));
  for (int i = 0; i < 6; ++i) {
    fleet.Submit(MakeRequest(i + 1, ArticlePrompt(i, 48), 4, 0.0));
  }
  fleet.RunToCompletion();

  const FleetStats stats = ClusterMetrics::FromRouter(fleet);
  EXPECT_EQ(stats.completed, 6);
  ASSERT_EQ(stats.replicas.size(), 2u);
  EXPECT_EQ(stats.replicas[0].completed, 3);
  EXPECT_EQ(stats.replicas[1].completed, 3);
  EXPECT_GT(stats.ttft_p50, 0.0);
  EXPECT_GE(stats.ttft_p99, stats.ttft_p50);
}

// --- Percentile edge cases (the Summary plumbing ClusterMetrics/bench_fleet rely on) ---

TEST(ClusterMetricsTest, PercentileOfSingleSampleIsThatSample) {
  Summary summary;
  summary.Add(0.25);
  EXPECT_DOUBLE_EQ(summary.Percentile(0.0), 0.25);
  EXPECT_DOUBLE_EQ(summary.Percentile(50.0), 0.25);
  EXPECT_DOUBLE_EQ(summary.Percentile(99.0), 0.25);
  EXPECT_DOUBLE_EQ(summary.Percentile(100.0), 0.25);
}

TEST(ClusterMetricsTest, PercentileEndpointsAreMinAndMax) {
  Summary summary;
  for (const double v : {4.0, 1.0, 3.0, 2.0}) {
    summary.Add(v);
  }
  EXPECT_DOUBLE_EQ(summary.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(summary.Percentile(100.0), 4.0);
}

TEST(ClusterMetricsTest, PercentileInterpolatesBetweenOrderStatistics) {
  Summary summary;
  for (const double v : {1.0, 2.0, 4.0}) {
    summary.Add(v);
  }
  // rank = p/100 * (n-1): p50 hits the middle sample exactly, p25/p75 interpolate.
  EXPECT_DOUBLE_EQ(summary.Percentile(50.0), 2.0);
  EXPECT_DOUBLE_EQ(summary.Percentile(25.0), 1.5);
  EXPECT_DOUBLE_EQ(summary.Percentile(75.0), 3.0);
}

TEST(ClusterMetricsTest, EmptyDistributionsReportZeroPercentiles) {
  EngineMetrics metrics;  // No records at all.
  EXPECT_DOUBLE_EQ(metrics.TtftPercentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(metrics.TpotPercentile(99.0), 0.0);
  EXPECT_EQ(metrics.CancelledRecords(), 0);
}

TEST(ClusterMetricsTest, SingleOutputTokenRequestsHaveNoTpotSample) {
  EngineMetrics metrics;
  metrics.RecordFinished(Record(1, 0.0, 0.01, 0.5, /*output_len=*/1));
  EXPECT_TRUE(metrics.TpotDistribution().empty());
  EXPECT_DOUBLE_EQ(metrics.TpotPercentile(50.0), 0.0);
  EXPECT_FALSE(metrics.TtftDistribution().empty());
}

// --- Recovery ledger (DESIGN.md §10) ---

TEST(ClusterMetricsTest, AddFleetCountersAccumulatesTheLedger) {
  FleetCounters counters;
  counters.submitted = 10;
  counters.replica_deaths = 1;
  counters.replica_stalls = 2;
  counters.death_cancels = 3;
  counters.rerouted = 3;
  counters.cancelled = 4;

  ClusterMetrics cluster;
  cluster.AddFleetCounters(counters);
  cluster.AddFleetCounters(counters);
  const FleetStats stats = cluster.Summarize();
  EXPECT_EQ(stats.submitted, 20);
  EXPECT_EQ(stats.replica_deaths, 2);
  EXPECT_EQ(stats.replica_stalls, 4);
  EXPECT_EQ(stats.death_cancels, 6);
  EXPECT_EQ(stats.rerouted, 6);
  EXPECT_EQ(stats.cancelled, 8);
}

TEST(ClusterMetricsTest, FromRouterCarriesRecoveryLedgerAndConservation) {
  FleetRouter fleet(TestFleetConfig(2, RoutePolicy::kRoundRobin));
  for (int i = 0; i < 8; ++i) {
    fleet.Submit(MakeRequest(i + 1, ArticlePrompt(i % 3, 48), 6, 0.0));
  }
  for (int i = 0; i < 2; ++i) {
    fleet.StepOnce();
  }
  fleet.KillReplica(0);
  fleet.RunToCompletion();

  const FleetStats stats = ClusterMetrics::FromRouter(fleet);
  EXPECT_EQ(stats.submitted, 8);
  EXPECT_EQ(stats.replica_deaths, 1);
  EXPECT_GT(stats.death_cancels, 0);  // RR placed work on replica 0 before the kill.
  EXPECT_EQ(stats.death_cancels, stats.rerouted);
  // Conservation identity: every finished record is a submit or a re-route.
  EXPECT_EQ(stats.completed + stats.failed, stats.submitted + stats.rerouted);
  EXPECT_EQ(stats.completed, 8);  // All 8 still complete — on the survivor.
  // The recovery line only appears when recovery actually happened.
  EXPECT_NE(stats.DebugString().find("recovery:"), std::string::npos);
}

TEST(ClusterMetricsTest, DebugStringOmitsRecoveryLineWhenFaultFree) {
  FleetRouter fleet(TestFleetConfig(2, RoutePolicy::kRoundRobin));
  for (int i = 0; i < 4; ++i) {
    fleet.Submit(MakeRequest(i + 1, ArticlePrompt(i, 48), 4, 0.0));
  }
  fleet.RunToCompletion();
  const FleetStats stats = ClusterMetrics::FromRouter(fleet);
  EXPECT_EQ(stats.replica_deaths, 0);
  EXPECT_EQ(stats.DebugString().find("recovery:"), std::string::npos);
}

}  // namespace
}  // namespace jenga
