// Shared fleet-bench harness: arXiv-QA traces replayed through a FleetRouter under each
// routing policy, plus a small deterministic fleet (tiny model) for the bench_perf trajectory
// keys. Used by bench_fleet (the showcase comparison) and bench_perf (the gated fleet.*
// metrics).

#ifndef JENGA_BENCH_FLEET_BENCH_H_
#define JENGA_BENCH_FLEET_BENCH_H_

#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/cluster_metrics.h"
#include "src/cluster/fleet_router.h"
#include "src/common/random.h"
#include "src/engine/engine.h"
#include "src/engine/gpu.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {

struct FleetTraceOptions {
  int num_articles = 12;
  int64_t min_article_len = 1500;
  int64_t max_article_len = 2500;
  int requests = 60;
  double rate = 8.0;  // Poisson arrivals per second.
  uint64_t seed = 0xF1EE7;
  int64_t output_lo = 16;
  int64_t output_hi = 48;
};

// The showcase fleet: Llama-3.1-8B replicas whose KV pools hold only a few articles each, so
// routing policy decides whether article prefixes stay resident. `pool_bytes` is per replica
// — ~4 articles' worth at the defaults (131072 KV bytes/token × ~2000-token articles).
struct FleetBenchConfig {
  int num_replicas = 4;
  RoutePolicy policy = RoutePolicy::kPrefixAffinity;
  int64_t pool_bytes = 1200LL << 20;
  uint64_t seed = 1;
  // Optional fleet fault plan (e.g. "replica_death:at=500") for the recovery scenario.
  std::string fault_plan;
  uint64_t fault_seed = 9;
};

inline std::vector<Request> MakeFleetTrace(const FleetTraceOptions& options) {
  ArxivQaDataset dataset(options.num_articles, options.min_article_len,
                         options.max_article_len, options.seed, options.output_lo,
                         options.output_hi);
  Rng rng(options.seed * 2654435761ull + 1);
  return GeneratePoisson(dataset, options.requests, options.rate, rng, /*first_id=*/1);
}

struct FleetBenchResult {
  FleetStats stats;
  FleetCounters counters;
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
};

inline FleetBenchResult RunFleetPolicy(const FleetBenchConfig& bench,
                                       std::vector<Request> trace) {
  FleetConfig config;
  config.num_replicas = bench.num_replicas;
  config.engine = JengaProfile(Llama31_8B(), H100());
  config.engine.pool_bytes_override = bench.pool_bytes;
  config.engine.memory_sample_every = 0;
  config.policy = bench.policy;
  config.seed = bench.seed;
  if (!bench.fault_plan.empty()) {
    FaultPlan plan;
    JENGA_CHECK(FaultPlan::Parse(bench.fault_plan, &plan).ok()) << bench.fault_plan;
    config.fleet_fault.plan = plan;
    config.fleet_fault.seed = bench.fault_seed;
  }
  FleetRouter fleet(std::move(config));

  const auto begin = std::chrono::steady_clock::now();
  fleet.RunTimedTrace(std::move(trace));
  const auto end = std::chrono::steady_clock::now();

  FleetBenchResult result;
  result.stats = ClusterMetrics::FromRouter(fleet);
  result.counters = fleet.counters();
  result.wall_seconds = std::chrono::duration<double>(end - begin).count();
  result.sim_seconds = fleet.ClusterClock();
  return result;
}

// --- Small deterministic fleet for the bench_perf fleet.* keys ---

// 4 full-attention layers, 1 KV head × 64 dims × fp16 → 1 KB/token: cheap enough that the
// perf-gate quick run costs milliseconds, with the same policy-sensitive cache shape.
inline ModelConfig FleetPerfModel() {
  ModelConfig model;
  model.name = "fleet-perf-tiny";
  model.params_b = 0.1;
  model.hidden_size = 256;
  model.max_context_len = 65536;
  model.compute_layers = 4;
  for (int i = 0; i < 4; ++i) {
    LayerSpec layer;
    layer.kind = LayerKind::kFullAttention;
    layer.num_kv_heads = 1;
    layer.head_dim = 64;
    layer.dtype_bytes = 2;
    model.layers.push_back(layer);
  }
  return model;
}

inline FleetConfig FleetPerfConfig(int num_replicas, RoutePolicy policy) {
  GpuSpec gpu;
  gpu.name = "fleet-perf-gpu";
  gpu.memory_bytes = 1LL << 30;
  gpu.flops = 1e13;
  gpu.mem_bandwidth = 1e11;
  gpu.max_batched_tokens = 2048;
  gpu.max_num_seqs = 32;
  gpu.reserved_bytes = 0;

  FleetConfig config;
  config.num_replicas = num_replicas;
  config.engine.model = FleetPerfModel();
  config.engine.gpu = gpu;
  config.engine.tokens_per_page = 16;
  config.engine.memory_sample_every = 0;
  // Per-replica pool of ~3 articles (articles below are ~512 tokens ≈ 512 KB).
  config.engine.pool_bytes_override = 1600LL << 10;
  config.policy = policy;
  return config;
}

// Deterministic cluster hit rate of the tiny fleet under `policy`: 8 articles over
// `num_replicas` replicas, Poisson trace, fixed seeds throughout.
inline double FleetPerfHitRate(int num_replicas, RoutePolicy policy, int requests) {
  FleetRouter fleet(FleetPerfConfig(num_replicas, policy));
  ArxivQaDataset dataset(/*num_articles=*/8, 400, 600, /*seed=*/0xF1EE7,
                         /*output_lo=*/8, /*output_hi=*/24);
  Rng rng(0xF1EE8);
  fleet.RunTimedTrace(GeneratePoisson(dataset, requests, /*rate=*/200.0, rng, 1));
  return ClusterMetrics::FromRouter(fleet).hit_rate;
}

// Routing-decision throughput against a warm 4-replica fleet: each Route() call snapshots
// per-replica load, hashes the prompt's routing chain, and scans the cluster prefix index —
// the per-request router overhead bench_perf gates.
inline double FleetRouteOpsPerSecond(int64_t iters) {
  FleetRouter fleet(FleetPerfConfig(4, RoutePolicy::kPrefixAffinity));
  ArxivQaDataset dataset(/*num_articles=*/8, 400, 600, /*seed=*/0xF1EE7,
                         /*output_lo=*/8, /*output_hi=*/24);
  Rng rng(0xF1EE9);
  // Warm every replica's cache and the cluster index.
  for (Request& r : GenerateBatch(dataset, 16, rng, 1)) {
    fleet.Submit(std::move(r));
  }
  fleet.RunToCompletion();

  std::vector<Request> probes = GenerateBatch(dataset, 32, rng, 1000);
  const auto begin = std::chrono::steady_clock::now();
  int64_t picked = 0;
  for (int64_t i = 0; i < iters; ++i) {
    picked += fleet.Route(probes[static_cast<size_t>(i) % probes.size()]).replica;
  }
  const auto end = std::chrono::steady_clock::now();
  // Keep the loop from being optimized out.
  if (picked < 0) {
    std::abort();
  }
  return static_cast<double>(iters) / std::chrono::duration<double>(end - begin).count();
}

}  // namespace jenga

#endif  // JENGA_BENCH_FLEET_BENCH_H_
