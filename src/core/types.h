// Shared identifier types for the two-level allocator.

#ifndef JENGA_SRC_CORE_TYPES_H_
#define JENGA_SRC_CORE_TYPES_H_

#include <cstdint>

namespace jenga {

// Logical time used for LRU ordering. The engine advances it once per scheduler step.
using Tick = int64_t;

// Identity of the request a page is associated with (request-aware allocation, §4.3).
using RequestId = int64_t;
inline constexpr RequestId kNoRequest = -1;

// Index of a large (LCM-sized) page within the KV pool.
using LargePageId = int32_t;
inline constexpr LargePageId kNoLargePage = -1;

// Index of a small page within one group's allocator. Encodes (large page, slot):
// id = large_page * pages_per_large + slot, so ids are stable while the large page is held.
using SmallPageId = int64_t;
inline constexpr SmallPageId kNoSmallPage = -1;

// Content hash identifying the token-block a cached page holds (prefix caching).
using BlockHash = uint64_t;

// Lifecycle of a small page (§5.4): empty (no valid KV, unused), evictable (valid cached KV,
// no user), used (referenced by at least one running request).
enum class PageState : uint8_t {
  kEmpty,
  kEvictable,
  kUsed,
};

[[nodiscard]] inline const char* PageStateName(PageState state) {
  switch (state) {
    case PageState::kEmpty:
      return "empty";
    case PageState::kEvictable:
      return "evictable";
    case PageState::kUsed:
      return "used";
  }
  return "unknown";
}

}  // namespace jenga

#endif  // JENGA_SRC_CORE_TYPES_H_
