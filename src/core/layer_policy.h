// Customizable per-layer-type prefix caching (§5, Figure 9). Each KV group owns a LayerPolicy
// that expresses its token-dependency pattern through three hooks:
//
//   UpdateLastAccess — which pages a computation step actually touches (balanced eviction),
//   SetPrefixLength  — aligned per-token eviction priorities within a timestamp,
//   GetPossiblePrefix — which cached prefixes constitute a valid hit.
//
// Most policies are fully determined by their *needed-token* rule ("which prefix tokens does
// generation depend on"), so the base class derives the three hooks from NeededTokenRanges();
// Mamba and the image caches override the hooks directly.

#ifndef JENGA_SRC_CORE_LAYER_POLICY_H_
#define JENGA_SRC_CORE_LAYER_POLICY_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/core/types.h"

namespace jenga {

// Lazily-resolved per-block cache-hit flags backing the incremental §5.2 hit scan. Each block
// is probed at most once (a probe is an allocator/host-tier hash lookup); results are memoized
// so repeated boundary candidates cost array reads only. The contiguous all-hit prefix is
// tracked separately so full-prefix range checks are O(1) amortized instead of O(p) per
// candidate prefix.
class BlockHitResolver {
 public:
  BlockHitResolver(int64_t num_blocks, std::function<bool(int64_t)> probe)
      : probe_(std::move(probe)), state_(static_cast<size_t>(num_blocks), kUnknown) {}

  [[nodiscard]] int64_t num_blocks() const { return static_cast<int64_t>(state_.size()); }

  // Memoized single-block probe.
  [[nodiscard]] bool IsHit(int64_t block);

  // True when any block in [lo, hi) — clamped to [0, num_blocks()) — is a miss.
  [[nodiscard]] bool AnyMiss(int64_t lo, int64_t hi);

 private:
  static constexpr int8_t kUnknown = -1;
  std::function<bool(int64_t)> probe_;
  std::vector<int8_t> state_;  // -1 unknown, 0 miss, 1 hit.
  // Blocks [0, contig_hits_) are known hits; when first_miss_known_, block contig_hits_ is the
  // stream's first miss.
  int64_t contig_hits_ = 0;
  bool first_miss_known_ = false;
};

// Mutation interface the policies use to talk to their group's allocator (the `self.evictor`
// of Figure 9b). Implemented by SmallPageAllocator.
class GroupCacheOps {
 public:
  virtual ~GroupCacheOps() = default;
  virtual void UpdateLastAccess(SmallPageId page, Tick now) = 0;
  virtual void SetPrefixLength(SmallPageId page, int64_t prefix_length) = 0;
};

// A request's footprint in one group: the group-local block page table plus enough context to
// interpret it. `num_tokens` counts tokens in the group's own coordinate space (all tokens for
// self-attention, image tokens for image groups, checkpoint count × interval for Mamba).
struct RequestPages {
  RequestId request = kNoRequest;
  std::span<const SmallPageId> pages;
  int64_t num_tokens = 0;
  int tokens_per_page = 1;
};

// Half-open token range [begin, end).
struct TokenRange {
  int64_t begin = 0;
  int64_t end = 0;
  [[nodiscard]] bool empty() const { return begin >= end; }
  bool operator==(const TokenRange&) const = default;
};

class LayerPolicy {
 public:
  virtual ~LayerPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  // The prefix-subset dependency: which tokens of a `num_tokens`-long prefix are needed to
  // generate the next token. Ranges are disjoint and ascending. Full attention returns
  // [0, num_tokens); sliding window returns the trailing window; PyramidKV returns
  // sinks + trailing budget.
  [[nodiscard]] virtual std::vector<TokenRange> NeededTokenRanges(int64_t num_tokens) const = 0;

  // §5.1 (balanced eviction): refresh last-access time of the pages touched this step.
  // Default: every page intersecting a needed range.
  virtual void UpdateLastAccess(const RequestPages& request, Tick now, GroupCacheOps& ops) const;

  // §5.1 (aligned eviction): assign per-page prefix lengths. Default: page i covers tokens up
  // to (i+1)·tokens_per_page, so deeper tokens evict first on timestamp ties.
  virtual void SetPrefixLength(const RequestPages& request, GroupCacheOps& ops) const;

  // §5.2 (customized hit rule): given per-block cached flags, returns valid[p] for
  // p = 0..is_hit.size(), where valid[p] means "a prefix of p blocks is a usable cache hit".
  // Default: prefix of p blocks is valid iff every *needed* block of that prefix is cached.
  [[nodiscard]] virtual std::vector<bool> GetPossiblePrefix(const std::vector<bool>& is_hit,
                                                            int tokens_per_page) const;

  // Incremental form of GetPossiblePrefix: evaluates valid[p] for one candidate prefix
  // without materializing the whole bitmap, resolving block hits lazily through `hits`.
  // Contract: must agree with GetPossiblePrefix for every p in [0, hits.num_blocks()].
  // Default mirrors the needed-range rule; MambaPolicy overrides (checkpoint p alone).
  [[nodiscard]] virtual bool PrefixValid(BlockHitResolver& hits, int64_t p,
                                         int tokens_per_page) const;

  // True when pages that fall outside the needed ranges may be dropped (freed or deprioritized)
  // while the request is still running. Sliding-window and pyramid layers return true; full
  // attention must keep everything.
  [[nodiscard]] virtual bool CanDropUnneededPages() const { return false; }

  // True when UpdateLastAccess refreshes every page the request still holds resident —
  // either because the needed ranges always cover the full prefix (full attention, image
  // caches) or because pages outside the ranges are dropped as they fall out (sliding window
  // and pyramid, provided DropUnneededPages actually runs). KvManager uses this to defer the
  // per-step O(pages) refresh to a single per-group timestamp applied at release/drop time:
  // while a page is used its last-access is unobservable, so the deferred value — the tick of
  // the owner's last computed step — is exactly what the eager loop would have left behind.
  // Mamba returns false (it refreshes only the newest state page, which is O(1) eagerly).
  [[nodiscard]] virtual bool RefreshCoversResidentPages() const { return false; }

  // Host-offload eligibility: whether this group's pages are worth moving over PCIe instead
  // of recomputing. Full-prefix KV, Mamba states, and vision embeddings are (the state is
  // expensive or impossible to recompute cheaply); sliding-window tails and pyramid middles
  // are cheap to recompute, so their pages never travel.
  [[nodiscard]] virtual bool SwapEligible() const { return true; }
};

// Standard full-prefix self-attention (and cross-attention over image tokens, which needs all
// image KV every step).
class FullPrefixPolicy : public LayerPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "full_prefix"; }
  [[nodiscard]] std::vector<TokenRange> NeededTokenRanges(int64_t num_tokens) const override {
    if (num_tokens == 0) {
      return {};
    }
    return {{0, num_tokens}};
  }
  [[nodiscard]] bool RefreshCoversResidentPages() const override { return true; }
};

// Sliding-window attention: only the trailing `window` tokens are needed (§5.3, Figure 9b).
class SlidingWindowPolicy : public LayerPolicy {
 public:
  explicit SlidingWindowPolicy(int window);
  [[nodiscard]] const char* name() const override { return "sliding_window"; }
  [[nodiscard]] std::vector<TokenRange> NeededTokenRanges(int64_t num_tokens) const override;
  [[nodiscard]] bool CanDropUnneededPages() const override { return true; }
  [[nodiscard]] bool SwapEligible() const override { return false; }
  [[nodiscard]] bool RefreshCoversResidentPages() const override { return true; }
  [[nodiscard]] int window() const { return window_; }

 private:
  int window_;
};

// PyramidKV-style sparse attention: keeps `num_sinks` attention-sink tokens plus the most
// recent tokens up to `token_budget` total.
class PyramidPolicy : public LayerPolicy {
 public:
  PyramidPolicy(int token_budget, int num_sinks);
  [[nodiscard]] const char* name() const override { return "pyramid"; }
  [[nodiscard]] std::vector<TokenRange> NeededTokenRanges(int64_t num_tokens) const override;
  [[nodiscard]] bool CanDropUnneededPages() const override { return true; }
  [[nodiscard]] bool SwapEligible() const override { return false; }
  [[nodiscard]] bool RefreshCoversResidentPages() const override { return true; }

 private:
  int token_budget_;
  int num_sinks_;
};

// Mamba / state-space layers (§5.3): one running state per sequence plus a checkpoint of the
// state every `checkpoint_interval` tokens. Group-local "blocks" are checkpoints: block i
// caches the state after (i+1)·interval tokens. A hit restores from any single cached
// checkpoint, so valid prefixes are exactly the cached checkpoints. Only the most recent page
// has its access time refreshed, and prefix lengths reflect checkpoint depth.
class MambaPolicy : public LayerPolicy {
 public:
  explicit MambaPolicy(int checkpoint_interval);
  [[nodiscard]] const char* name() const override { return "mamba"; }
  [[nodiscard]] std::vector<TokenRange> NeededTokenRanges(int64_t num_tokens) const override;
  void UpdateLastAccess(const RequestPages& request, Tick now, GroupCacheOps& ops) const override;
  void SetPrefixLength(const RequestPages& request, GroupCacheOps& ops) const override;
  [[nodiscard]] std::vector<bool> GetPossiblePrefix(const std::vector<bool>& is_hit,
                                                    int tokens_per_page) const override;
  [[nodiscard]] bool PrefixValid(BlockHitResolver& hits, int64_t p,
                                 int tokens_per_page) const override;
  [[nodiscard]] int checkpoint_interval() const { return checkpoint_interval_; }

 private:
  int checkpoint_interval_;
};

// Image caches — the vision-embedding cache and the cross-attention KV cache (§5.3): evicting
// one token of an image forces re-encoding the whole image, so all pages of the same image get
// one shared randomized prefix length; the image with the highest value evicts first, keeping
// whole images together. The randomization is a deterministic hash of (request, image ordinal)
// so the vision and cross-attention groups assign identical priorities to the same image.
class ImageCachePolicy : public LayerPolicy {
 public:
  explicit ImageCachePolicy(int tokens_per_image);
  [[nodiscard]] const char* name() const override { return "image_cache"; }
  [[nodiscard]] std::vector<TokenRange> NeededTokenRanges(int64_t num_tokens) const override {
    if (num_tokens == 0) {
      return {};
    }
    return {{0, num_tokens}};
  }
  void SetPrefixLength(const RequestPages& request, GroupCacheOps& ops) const override;
  [[nodiscard]] bool RefreshCoversResidentPages() const override { return true; }

 private:
  int tokens_per_image_;
};

}  // namespace jenga

#endif  // JENGA_SRC_CORE_LAYER_POLICY_H_
