#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include "tests/engine/test_models.h"

namespace jenga {
namespace {

EngineConfig TestConfig(ModelConfig model, bool jenga, int64_t pool_bytes) {
  EngineConfig config;
  config.model = std::move(model);
  config.gpu = TestGpu();
  config.jenga = jenga;
  config.vision_cache = jenga;
  config.pool_bytes_override = pool_bytes;
  config.memory_sample_every = 1;
  return config;
}

TEST(Engine, SingleRequestCompletes) {
  Engine engine(TestConfig(TinyFullModel(), true, 1 << 22));
  engine.Submit(MakeRequest(0, TextPrompt(100), 10, 0.0));
  engine.RunToCompletion();
  ASSERT_EQ(engine.metrics().finished().size(), 1u);
  const RequestRecord& record = engine.metrics().finished()[0];
  EXPECT_FALSE(record.failed);
  EXPECT_EQ(record.output_len, 10);
  EXPECT_GT(record.first_token_time, 0.0);
  EXPECT_GE(record.finish_time, record.first_token_time);
  // 1 prefill step + 9 decode steps.
  EXPECT_EQ(engine.metrics().total_steps(), 10);
  engine.kv().CheckConsistency();
}

TEST(Engine, TtftBeforeE2eAndTpotPositive) {
  Engine engine(TestConfig(TinyFullModel(), true, 1 << 22));
  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(64 + 16 * i), 8, 0.1 * i));
  }
  engine.RunToCompletion();
  ASSERT_EQ(engine.metrics().finished().size(), 4u);
  for (const RequestRecord& record : engine.metrics().finished()) {
    EXPECT_GE(record.Ttft(), 0.0);
    EXPECT_GE(record.E2eLatency(), record.Ttft());
    EXPECT_GT(record.Tpot(), 0.0);
  }
}

TEST(Engine, ChunkedPrefillSplitsLongPrompts) {
  EngineConfig config = TestConfig(TinyFullModel(), true, 1 << 24);
  config.max_batched_tokens_override = 128;
  Engine engine(config);
  engine.Submit(MakeRequest(0, TextPrompt(1000), 2, 0.0));
  engine.RunToCompletion();
  // ceil(1000/128) = 8 prefill steps + 1 decode step.
  EXPECT_EQ(engine.metrics().total_steps(), 9);
}

TEST(Engine, ContinuousBatchingInterleavesRequests) {
  Engine engine(TestConfig(TinyFullModel(), true, 1 << 24));
  for (int i = 0; i < 8; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(64), 32, 0.0));
  }
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 8);
  // All eight decode together once prefilled.
  EXPECT_GT(engine.metrics().decode_batch_series().MaxValue(), 7.0);
}

TEST(Engine, PreemptionRecoversUnderMemoryPressure) {
  // Pool fits ~2 requests' KV; 4 long-output requests force preemption churn.
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  Engine engine(TestConfig(model, true, spec.LcmPageBytes() * 24));
  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(96), 80, 0.0));
  }
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  int preemptions = 0;
  for (const RequestRecord& record : engine.metrics().finished()) {
    preemptions += record.preemptions;
  }
  EXPECT_GT(preemptions, 0);
  engine.kv().CheckConsistency();
}

TEST(Engine, OversizedRequestFailsInsteadOfDeadlocking) {
  const ModelConfig model = TinyFullModel();
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  Engine engine(TestConfig(model, true, spec.LcmPageBytes() * 4));
  engine.Submit(MakeRequest(0, TextPrompt(16 * 64), 4, 0.0));
  engine.RunToCompletion();
  ASSERT_EQ(engine.metrics().finished().size(), 1u);
  EXPECT_TRUE(engine.metrics().finished()[0].failed);
  EXPECT_EQ(engine.metrics().FailedRequests(), 1);
}

TEST(Engine, PrefixCachingAcceleratesRepeatedPrompts) {
  Engine engine(TestConfig(TinyFullModel(), true, 1 << 24));
  engine.Submit(MakeRequest(0, TextPrompt(512), 4, 0.0));
  engine.RunToCompletion();
  const int64_t prefill_first = engine.metrics().prefill_tokens_computed;
  engine.Submit(MakeRequest(1, TextPrompt(512), 4, engine.now()));
  engine.RunToCompletion();
  const int64_t prefill_second = engine.metrics().prefill_tokens_computed - prefill_first;
  EXPECT_EQ(engine.metrics().cache_hit_tokens, 496);  // 31 of 32 blocks.
  EXPECT_EQ(prefill_second, 16);
  engine.kv().CheckConsistency();
}

TEST(Engine, JengaMatchesBaselineOnHomogeneousModel) {
  // §7.2: on a standard self-attention model Jenga introduces no overhead — same steps, same
  // simulated time, because the degenerate Jenga spec equals the baseline spec.
  std::vector<double> times;
  std::vector<int64_t> steps;
  for (const bool jenga : {true, false}) {
    Engine engine(TestConfig(TinyFullModel(), jenga, 1 << 24));
    for (int i = 0; i < 6; ++i) {
      engine.Submit(MakeRequest(i, TextPrompt(200 + i), 16, 0.0));
    }
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 6);
    times.push_back(engine.now());
    steps.push_back(engine.metrics().total_steps());
  }
  EXPECT_EQ(steps[0], steps[1]);
  EXPECT_NEAR(times[0], times[1], times[1] * 0.01);
}

TEST(Engine, JengaSustainsLargerBatchOnSlidingModel) {
  // The headline effect: under a constrained pool, dropping out-of-window KV lets Jenga batch
  // more decodes and finish sooner than the homogeneous baseline.
  const ModelConfig model = TinySlidingModel(/*window=*/64);
  const KvSpec spec = MakeJengaSpec(model, 16, false);
  const int64_t pool = spec.LcmPageBytes() * 200;
  double jenga_time = 0.0;
  double baseline_time = 0.0;
  double jenga_batch = 0.0;
  double baseline_batch = 0.0;
  for (const bool jenga : {true, false}) {
    EngineConfig config = TestConfig(model, jenga, pool);
    config.enable_prefix_caching = false;
    config.max_batched_tokens_override = 128;
    Engine engine(config);
    for (int i = 0; i < 8; ++i) {
      engine.Submit(MakeRequest(i, TextPrompt(640), 40, 0.0));
    }
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 8);
    (jenga ? jenga_time : baseline_time) = engine.now();
    (jenga ? jenga_batch : baseline_batch) = engine.metrics().MeanDecodeBatch();
  }
  EXPECT_LT(jenga_time, baseline_time);
  EXPECT_GT(jenga_batch, baseline_batch);
}

TEST(Engine, VisionEncoderRunsOnceWithCache) {
  const ModelConfig model = TinyVisionModel();
  EngineConfig config = TestConfig(model, true, 1 << 24);
  config.max_batched_tokens_override = 16;  // Force several chunks per request.
  Engine engine(config);
  engine.Submit(MakeRequest(0, MixedPrompt(16, 4, 8, 16), 4, 0.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().vision_encoder_runs, 1);
}

TEST(Engine, VisionEncoderRerunsWithoutCache) {
  const ModelConfig model = TinyVisionModel();
  EngineConfig config = TestConfig(model, false, 1 << 24);
  config.max_batched_tokens_override = 16;
  Engine engine(config);
  engine.Submit(MakeRequest(0, MixedPrompt(16, 4, 8, 16), 4, 0.0));
  engine.RunToCompletion();
  // 32 image tokens / 16-token chunks → at least 2 chunks touch images.
  EXPECT_GE(engine.metrics().vision_encoder_runs, 2);
}

TEST(Engine, MemoryTimelinePartitionsPool) {
  Engine engine(TestConfig(TinySlidingModel(64), false, 1 << 22));
  for (int i = 0; i < 4; ++i) {
    engine.Submit(MakeRequest(i, TextPrompt(320), 8, 0.0));
  }
  engine.RunToCompletion();
  ASSERT_FALSE(engine.metrics().memory_timeline().empty());
  for (const MemorySample& sample : engine.metrics().memory_timeline()) {
    // used + wasted + cached + unallocated == pool (± partial-block padding inside "used").
    const int64_t sum =
        sample.used_bytes + sample.wasted_bytes + sample.cached_bytes + sample.unallocated_bytes;
    EXPECT_NEAR(static_cast<double>(sum), static_cast<double>(1 << 22),
                0.02 * static_cast<double>(1 << 22));
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run = [] {
    Engine engine(TestConfig(TinySlidingModel(64), true, 1 << 22));
    for (int i = 0; i < 6; ++i) {
      engine.Submit(MakeRequest(i, TextPrompt(200 + 30 * i), 20, 0.05 * i));
    }
    engine.RunToCompletion();
    return engine.now();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Engine, PoissonArrivalsRespectArrivalTimes) {
  Engine engine(TestConfig(TinyFullModel(), true, 1 << 24));
  engine.Submit(MakeRequest(0, TextPrompt(64), 4, 0.0));
  engine.Submit(MakeRequest(1, TextPrompt(64), 4, 100.0));  // Far in the future.
  engine.RunToCompletion();
  ASSERT_EQ(engine.metrics().finished().size(), 2u);
  const RequestRecord& late = engine.metrics().finished()[1];
  EXPECT_GE(late.first_scheduled_time, 100.0);
  EXPECT_LT(engine.metrics().finished()[0].finish_time, 100.0);
}

}  // namespace
}  // namespace jenga
