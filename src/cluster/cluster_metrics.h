// Fleet-level measurement: aggregates each replica's per-request records (EngineMetrics)
// into cluster percentiles — TTFT/TPOT p50/p99 over the pooled request population — plus
// per-replica prefix-cache hit rate and pool occupancy. Used by bench_fleet and the fleet
// examples; pure aggregation, no engine coupling beyond the metrics structs.

#ifndef JENGA_SRC_CLUSTER_CLUSTER_METRICS_H_
#define JENGA_SRC_CLUSTER_CLUSTER_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/metrics/metrics.h"

namespace jenga {

class FleetRouter;
struct FleetCounters;

struct ReplicaStats {
  int replica = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  // Prefix-cache hit rate over prompt tokens: hits / (hits + prefill computed).
  double hit_rate = 0.0;
  // Pool occupancy at snapshot time: used bytes / pool bytes.
  double occupancy = 0.0;
  double ttft_p50 = 0.0;
  double ttft_p99 = 0.0;
  double tpot_p50 = 0.0;
  double tpot_p99 = 0.0;
};

struct FleetStats {
  int64_t completed = 0;
  int64_t failed = 0;
  // Recovery ledger, filled from the driver's FleetCounters (AddFleetCounters). The
  // conservation identity — submitted requests are never lost across replica deaths —
  // reads: Σ replica finished records (completed + failed) == submitted + rerouted, with
  // death_cancels == rerouted when every harvested request found a survivor.
  int64_t submitted = 0;
  int64_t replica_deaths = 0;
  int64_t replica_stalls = 0;
  int64_t death_cancels = 0;
  int64_t rerouted = 0;
  int64_t cancelled = 0;  // Client cancels routed through the driver.
  // Pooled over every replica's finished, non-failed requests.
  double ttft_p50 = 0.0;
  double ttft_p99 = 0.0;
  double tpot_p50 = 0.0;
  double tpot_p99 = 0.0;
  // Cluster-level hit rate: Σ hits / Σ (hits + prefill computed) across replicas.
  double hit_rate = 0.0;
  std::vector<ReplicaStats> replicas;

  [[nodiscard]] std::string DebugString() const;
};

class ClusterMetrics {
 public:
  // Folds one replica's engine metrics (plus its occupancy snapshot) into the aggregate.
  // Replicas are indexed in the order they are added.
  void AddReplica(const EngineMetrics& metrics, double occupancy);

  // Folds the driver's routing/recovery counters into the ledger fields.
  void AddFleetCounters(const FleetCounters& counters);

  [[nodiscard]] FleetStats Summarize() const;

  // Convenience: snapshots every replica of `router` (metrics + live occupancy).
  [[nodiscard]] static FleetStats FromRouter(FleetRouter& router);

 private:
  Summary ttft_;
  Summary tpot_;
  int64_t hit_tokens_ = 0;
  int64_t prefill_tokens_ = 0;
  FleetStats stats_;  // Accumulates totals and per-replica rows; percentiles fill on Summarize.
};

}  // namespace jenga

#endif  // JENGA_SRC_CLUSTER_CLUSTER_METRICS_H_
