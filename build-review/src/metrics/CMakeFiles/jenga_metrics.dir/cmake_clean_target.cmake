file(REMOVE_RECURSE
  "libjenga_metrics.a"
)
