// Figure 16: memory-usage timeline for the Ministral 8B model on a static and a dynamic
// long-context trace, vLLM vs Jenga. The paper reports vLLM wasting 38.2 % of KV memory on
// average (sliding-window KV it cannot free) while Jenga wastes 0.04 %; in the dynamic trace
// Jenga's self-attention share of allocated KV shifts with the workload (27.8 %–54.5 %).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/model/model_zoo.h"
#include "src/workload/datasets.h"

namespace jenga {
namespace {

struct FragResult {
  double waste_fraction = 0.0;    // wasted / (used + wasted), averaged over samples.
  double mean_used_gb = 0.0;
  double mean_wasted_gb = 0.0;
  std::vector<double> used_series;
  std::vector<double> wasted_series;
};

FragResult RunOne(bool jenga, const std::vector<Request>& trace) {
  const ModelConfig model = Ministral8B();
  EngineConfig config = jenga ? JengaProfile(model, H100()) : VllmProfile(model, H100());
  config.enable_prefix_caching = false;
  config.memory_sample_every = 4;
  Engine engine(std::move(config));
  for (const Request& r : trace) {
    engine.Submit(r);
  }
  engine.RunToCompletion();

  FragResult result;
  TimeSeries used;
  TimeSeries wasted;
  double waste_sum = 0.0;
  int64_t samples = 0;
  for (const MemorySample& sample : engine.metrics().memory_timeline()) {
    used.Add(sample.time, static_cast<double>(sample.used_bytes));
    wasted.Add(sample.time, static_cast<double>(sample.wasted_bytes));
    const int64_t kv = sample.used_bytes + sample.wasted_bytes;
    if (kv > 0) {
      waste_sum += static_cast<double>(sample.wasted_bytes) / static_cast<double>(kv);
      ++samples;
    }
  }
  result.waste_fraction = samples > 0 ? waste_sum / static_cast<double>(samples) : 0.0;
  result.mean_used_gb = used.MeanValue() / 1e9;
  result.mean_wasted_gb = wasted.MeanValue() / 1e9;
  result.used_series = used.Resample(48);
  result.wasted_series = wasted.Resample(48);
  return result;
}

void PrintTrace(const char* trace_name, const std::vector<Request>& trace,
                const FragResult* results) {
  std::printf("\n[%s trace: %zu requests]\n", trace_name, trace.size());
  PrintRow({{10, "Engine"},
            {16, "KV waste (avg)"},
            {16, "used (avg)"},
            {16, "wasted (avg)"}});
  PrintRule();
  for (const bool jenga : {false, true}) {
    const FragResult& result = results[jenga ? 1 : 0];
    PrintRow({{10, jenga ? "Jenga" : "vLLM"},
              {16, Pct(result.waste_fraction)},
              {16, Fmt("%.2f GB", result.mean_used_gb)},
              {16, Fmt("%.2f GB", result.mean_wasted_gb)}});
    std::printf("  used:   %s\n", Sparkline(result.used_series).c_str());
    std::printf("  wasted: %s\n", Sparkline(result.wasted_series).c_str());
  }
}

void Run() {
  PrintHeader("Figure 16: Memory breakdown timeline — Ministral 8B (H100)");
  Rng rng_static(0xF16);
  Rng rng_dynamic(0xF17);
  const std::vector<Request> static_trace = StaticLongTrace(/*count=*/40, /*rate=*/0.05, rng_static);
  const std::vector<Request> dynamic_trace =
      DynamicLongTrace(/*count=*/40, /*rate=*/0.05, rng_dynamic);
  // Four independent engine runs (trace × engine), computed in parallel, printed in figure
  // order.
  std::vector<std::function<FragResult()>> tasks;
  for (const std::vector<Request>* trace : {&static_trace, &dynamic_trace}) {
    for (const bool jenga : {false, true}) {
      tasks.emplace_back([trace, jenga] { return RunOne(jenga, *trace); });
    }
  }
  const std::vector<FragResult> results = ParallelSweep(tasks);
  PrintTrace("static", static_trace, &results[0]);
  PrintTrace("dynamic", dynamic_trace, &results[2]);
  std::printf(
      "\nShape checks vs paper: vLLM wastes ~38%% of its KV memory (out-of-window sliding\n"
      "KV it cannot free) while Jenga's waste stays near zero (unused small pages inside\n"
      "large pages plus the partially-filled trailing block).\n");
}

}  // namespace
}  // namespace jenga

int main() {
  jenga::Run();
  return 0;
}
