file(REMOVE_RECURSE
  "CMakeFiles/hybrid_serving.dir/hybrid_serving.cpp.o"
  "CMakeFiles/hybrid_serving.dir/hybrid_serving.cpp.o.d"
  "hybrid_serving"
  "hybrid_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
