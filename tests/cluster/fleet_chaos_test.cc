// Fleet chaos tier (ISSUE 8 tentpole): randomized fleet schedules × replica fault plans ×
// replica counts, run through BOTH drivers.
//
// Deterministic arm (FleetRouter): each seed draws a fleet schedule (2-4 replicas, staggered
// submits, client cancels) plus scheduled replica kills/stalls and an optional fleet-scoped
// injector plan (replica_death / replica_stall sites). The oracle checks what must survive
// arbitrary replica failure:
//
//   - every replica's allocator — dead ones included — audits green every 64 fleet steps and
//     at quiescence (death-harvest cancels reclaim fully);
//   - no request is lost: Σ replica finished records == submitted + rerouted, with
//     death_cancels == rerouted (every harvested request was re-submitted exactly once);
//   - per request: exactly one record on its final placement; any record left on another
//     replica is a death-cancel; a request that was never client-cancelled completes with
//     its full output length on a survivor — replica death mid-decode is recompute, not loss;
//   - Σ cancelled records == death_cancels + successful client cancels (the new
//     EngineMetrics::CancelledRecords cross-check);
//   - a second run of the same schedule is byte-identical (chaos determinism), and for
//     fault-free schedules an armed-but-never-firing plan ("replica_death:at=10^9") changes
//     nothing — the null-path purity differential (the committed fleet_route.golden pins the
//     same property against pre-change HEAD).
//
// Threaded arm (FleetFrontend): producer threads submit/cancel while a chaos thread kills
// replicas mid-flight. Every accepted stream must still reach a terminal phase, and the
// frontend ledgers must balance with the kill/harvest counters.
//
// On failure the deterministic arm prints the seed, a minimized schedule, and a repro line.
// Env overrides:
//   JENGA_FLEET_CHAOS_SCHEDULES=<n>  deterministic schedules (default 150; check.sh: 3000)
//   JENGA_FUZZ_SEED=<seed>           replay exactly one deterministic schedule
//   JENGA_FAULT_PLAN=<plan>          replace the drawn fleet fault plan
//   JENGA_FAULT_SEED=<seed>          replace the drawn fleet fault seed
//   JENGA_STRESS_SEED=<seed>         reseed the threaded arm

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/audit/allocator_auditor.h"
#include "src/cluster/fleet_frontend.h"
#include "src/cluster/fleet_router.h"
#include "src/common/random.h"
#include "src/fault/fault_injector.h"
#include "src/model/kv_spec.h"
#include "tests/cluster/fleet_test_util.h"
#include "tests/fuzz/fuzz_harness.h"

namespace jenga {
namespace {

// ---------------------------------------------------------------------------------------
// Schedule model

struct ChaosRequestSpec {
  int article = 0;
  int64_t prompt_len = 48;
  int question = 0;
  int64_t output_len = 4;
  int submit_step = 0;
};

struct ChaosKillSpec {
  int replica = 0;
  int step = 0;
};

struct ChaosStallSpec {
  int replica = 0;
  int step = 0;
  int64_t steps = 8;
};

struct ChaosFleetCancelSpec {
  int request_index = 0;
  int step = 0;
};

struct FleetChaosSchedule {
  uint64_t seed = 0;
  int num_replicas = 2;
  RoutePolicy policy = RoutePolicy::kPrefixAffinity;
  int spill_queue_depth = 4;
  double spill_occupancy = 0.90;
  // Per-replica pool in LCM pages; sized so every request finishes alone (FCFS livelock
  // guard) while concurrent requests churn preemption — same regime as fleet_stress_test.
  int64_t pool_pages = 24;
  int64_t stall_steps = 8;
  std::string fleet_plan;  // replica_death / replica_stall sites; empty = no injector.
  uint64_t fault_seed = 1;
  std::vector<ChaosRequestSpec> requests;
  std::vector<ChaosKillSpec> kills;
  std::vector<ChaosStallSpec> stalls;
  std::vector<ChaosFleetCancelSpec> cancels;

  [[nodiscard]] bool fault_free() const {
    return kills.empty() && stalls.empty() && fleet_plan.empty();
  }
};

FleetChaosSchedule DrawFleetChaosSchedule(uint64_t seed) {
  Rng rng(seed ^ 0xF1EE7C4A05ull);
  rng.NextU64();
  FleetChaosSchedule s;
  s.seed = seed;
  s.num_replicas = static_cast<int>(rng.UniformInt(2, 4));
  s.policy = rng.Bernoulli(0.7) ? RoutePolicy::kPrefixAffinity : RoutePolicy::kRoundRobin;
  s.spill_queue_depth = static_cast<int>(rng.UniformInt(2, 6));
  s.spill_occupancy = rng.UniformDouble(0.75, 0.95);
  s.pool_pages = rng.UniformInt(20, 28);
  s.stall_steps = rng.UniformInt(4, 24);

  const int num_requests = static_cast<int>(rng.UniformInt(8, 24));
  for (int i = 0; i < num_requests; ++i) {
    ChaosRequestSpec r;
    r.article = static_cast<int>(rng.UniformInt(0, 4));
    r.prompt_len = rng.UniformInt(32, 128);
    r.question = static_cast<int>(rng.UniformInt(0, 5));
    r.output_len = rng.UniformInt(2, 16);
    r.submit_step = static_cast<int>(rng.UniformInt(0, 48));
    s.requests.push_back(r);
    if (rng.Bernoulli(0.12)) {
      ChaosFleetCancelSpec c;
      c.request_index = i;
      c.step = r.submit_step + static_cast<int>(rng.UniformInt(0, 30));
      s.cancels.push_back(c);
    }
  }

  // Scheduled deaths/stalls: deterministic replays need exact (replica, step) pairs, so most
  // of the fault mass is scheduled; the injector plan below adds seed-driven extras.
  const int num_kills = rng.Bernoulli(0.55) ? static_cast<int>(rng.UniformInt(1, 2)) : 0;
  for (int i = 0; i < num_kills; ++i) {
    ChaosKillSpec k;
    k.replica = static_cast<int>(rng.UniformInt(0, s.num_replicas - 1));
    k.step = static_cast<int>(rng.UniformInt(1, 70));
    s.kills.push_back(k);
  }
  const int num_stalls = rng.Bernoulli(0.4) ? static_cast<int>(rng.UniformInt(1, 2)) : 0;
  for (int i = 0; i < num_stalls; ++i) {
    ChaosStallSpec st;
    st.replica = static_cast<int>(rng.UniformInt(0, s.num_replicas - 1));
    st.step = static_cast<int>(rng.UniformInt(1, 70));
    st.steps = rng.UniformInt(4, 24);
    s.stalls.push_back(st);
  }
  if (rng.Bernoulli(0.35)) {
    std::ostringstream plan;
    char buf[64];
    if (rng.Bernoulli(0.6)) {
      std::snprintf(buf, sizeof(buf), "replica_death:p=%.4f", rng.UniformDouble(0.001, 0.008));
      plan << buf;
    }
    if (rng.Bernoulli(0.6)) {
      std::snprintf(buf, sizeof(buf), "%sreplica_stall:p=%.4f",
                    plan.tellp() > 0 ? "," : "", rng.UniformDouble(0.002, 0.015));
      plan << buf;
    }
    s.fleet_plan = plan.str();
  }
  s.fault_seed = rng.NextU64() | 1;

  // Operator replay overrides (same env contract as the engine chaos tier).
  if (const char* env_plan = std::getenv("JENGA_FAULT_PLAN")) {
    s.fleet_plan = env_plan;
  }
  if (const char* env_seed = std::getenv("JENGA_FAULT_SEED")) {
    s.fault_seed = std::strtoull(env_seed, nullptr, 0);
  }
  return s;
}

std::string DescribeFleetChaosSchedule(const FleetChaosSchedule& s) {
  std::ostringstream out;
  out << "seed=0x" << std::hex << s.seed << std::dec << " replicas=" << s.num_replicas
      << " policy=" << RoutePolicyName(s.policy) << " spill{depth=" << s.spill_queue_depth
      << " occ=" << s.spill_occupancy << "} pool_pages=" << s.pool_pages
      << " stall_steps=" << s.stall_steps;
  if (!s.fleet_plan.empty()) {
    out << " fault{plan=\"" << s.fleet_plan << "\" seed=0x" << std::hex << s.fault_seed
        << std::dec << "}";
  }
  out << "\n";
  for (size_t i = 0; i < s.requests.size(); ++i) {
    const ChaosRequestSpec& r = s.requests[i];
    out << "  req[" << i << "] article=" << r.article << " prompt=" << r.prompt_len
        << " question=" << r.question << " output=" << r.output_len
        << " submit_step=" << r.submit_step << "\n";
  }
  for (const ChaosKillSpec& k : s.kills) {
    out << "  kill replica " << k.replica << " at step " << k.step << "\n";
  }
  for (const ChaosStallSpec& st : s.stalls) {
    out << "  stall replica " << st.replica << " at step " << st.step << " for " << st.steps
        << "\n";
  }
  for (const ChaosFleetCancelSpec& c : s.cancels) {
    out << "  cancel req[" << c.request_index << "] at step " << c.step << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------------------
// Deterministic arm

FleetConfig BuildChaosFleetConfig(const FleetChaosSchedule& s) {
  FleetConfig config = TestFleetConfig(s.num_replicas, s.policy, /*seed=*/s.seed);
  const KvSpec spec = MakeJengaSpec(config.engine.model, 16, false);
  config.engine.pool_bytes_override = spec.LcmPageBytes() * s.pool_pages;
  config.spill_queue_depth = s.spill_queue_depth;
  config.spill_occupancy = s.spill_occupancy;
  config.stall_steps = s.stall_steps;
  if (!s.fleet_plan.empty()) {
    FaultPlan plan;
    JENGA_CHECK(FaultPlan::Parse(s.fleet_plan, &plan).ok()) << s.fleet_plan;
    config.fleet_fault.plan = plan;
    config.fleet_fault.seed = s.fault_seed;
  }
  return config;
}

std::string AuditFleet(FleetRouter& fleet) {
  AllocatorAuditor auditor;
  for (int i = 0; i < fleet.num_replicas(); ++i) {
    auditor.AttachAllocator(&fleet.replica(i).kv().allocator_mutable());
  }
  const auto violations = auditor.Audit();
  auditor.DetachAll();
  return violations.empty() ? std::string() : violations.front();
}

// Fault activity observed across a tier run — the vacuity guard and the end-of-tier summary
// both read from this, so a silently dead fault path is loud, not lucky.
struct FleetChaosActivity {
  int64_t kills = 0;
  int64_t stalls = 0;
  int64_t fires = 0;
  int64_t death_cancels = 0;
  int64_t rerouted = 0;

  [[nodiscard]] int64_t total() const { return kills + stalls + fires; }
};

// Runs one schedule to quiescence. Returns the first violation (empty = green); appends the
// outcome signature to `signature` and the observed fault activity to `*activity` when
// non-null.
std::string RunFleetChaosSchedule(const FleetChaosSchedule& s, bool with_audit,
                                  std::string* signature, FleetChaosActivity* activity) {
  FleetRouter fleet(BuildChaosFleetConfig(s));
  const int n = static_cast<int>(s.requests.size());
  int64_t submitted = 0;
  int64_t client_cancels = 0;
  int64_t applied_kills = 0;
  int64_t applied_stalls = 0;
  int last_event_step = 0;
  for (const ChaosRequestSpec& r : s.requests) {
    last_event_step = std::max(last_event_step, r.submit_step);
  }
  for (const ChaosKillSpec& k : s.kills) {
    last_event_step = std::max(last_event_step, k.step);
  }
  for (const ChaosStallSpec& st : s.stalls) {
    last_event_step = std::max(last_event_step, st.step);
  }
  for (const ChaosFleetCancelSpec& c : s.cancels) {
    last_event_step = std::max(last_event_step, c.step);
  }

  const int64_t max_steps = 20000;
  for (int64_t step = 0;; ++step) {
    if (step > max_steps) {
      return "fleet chaos schedule did not converge within " + std::to_string(max_steps) +
             " steps";
    }
    // Fixed event order per step — submits, kills, stalls, cancels — keeps replays exact.
    for (int i = 0; i < n; ++i) {
      if (s.requests[static_cast<size_t>(i)].submit_step == step) {
        const ChaosRequestSpec& r = s.requests[static_cast<size_t>(i)];
        fleet.Submit(MakeRequest(static_cast<RequestId>(i),
                                 ArticlePrompt(r.article, r.prompt_len, r.question),
                                 r.output_len, 0.0));
        ++submitted;
      }
    }
    for (const ChaosKillSpec& k : s.kills) {
      if (k.step == step && fleet.ReplicaAlive(k.replica) &&
          fleet.supervisor().num_alive() > 1) {
        fleet.KillReplica(k.replica);
        ++applied_kills;
      }
    }
    for (const ChaosStallSpec& st : s.stalls) {
      if (st.step == step && fleet.ReplicaAlive(st.replica)) {
        fleet.StallReplica(st.replica, st.steps);
        ++applied_stalls;
      }
    }
    for (const ChaosFleetCancelSpec& c : s.cancels) {
      if (c.step == step) {
        client_cancels += fleet.CancelRequest(static_cast<RequestId>(c.request_index)) ? 1 : 0;
      }
    }
    const bool stepped = fleet.StepOnce();
    if (with_audit && (step & 63) == 0) {
      const std::string violation = AuditFleet(fleet);
      if (!violation.empty()) {
        return "auditor violation at fleet step " + std::to_string(step) + ": " + violation;
      }
    }
    if (!stepped && step >= last_event_step) {
      break;
    }
  }

  // ----- End-of-run oracle -----
  if (with_audit) {
    const std::string violation = AuditFleet(fleet);
    if (!violation.empty()) {
      return "auditor violation at quiescence: " + violation;
    }
  }
  const FleetCounters& fc = fleet.counters();
  if (fc.submitted != submitted) {
    return "submitted counter " + std::to_string(fc.submitted) + " != client submits " +
           std::to_string(submitted);
  }
  if (fc.replica_deaths < applied_kills ||
      fc.replica_deaths >= static_cast<int64_t>(s.num_replicas)) {
    return "replica_deaths=" + std::to_string(fc.replica_deaths) + " inconsistent (scheduled " +
           std::to_string(applied_kills) + " of " + std::to_string(s.num_replicas) +
           " replicas)";
  }
  if (fleet.supervisor().num_alive() !=
      s.num_replicas - static_cast<int>(fc.replica_deaths)) {
    return "liveness count disagrees with replica_deaths";
  }
  if (fc.replica_stalls < applied_stalls) {
    return "replica_stalls=" + std::to_string(fc.replica_stalls) + " < scheduled " +
           std::to_string(applied_stalls);
  }
  if (s.fault_free() &&
      (fc.replica_deaths != 0 || fc.replica_stalls != 0 || fc.death_cancels != 0 ||
       fc.rerouted != 0 || fc.death_fires_ignored != 0 || fleet.FleetFaultFires() != 0)) {
    return "recovery counters nonzero on a fault-free schedule";
  }

  // Conservation ledger: no request is lost across deaths.
  if (fc.death_cancels != fc.rerouted) {
    return "ledger: death_cancels=" + std::to_string(fc.death_cancels) +
           " != rerouted=" + std::to_string(fc.rerouted);
  }
  int64_t records = 0;
  int64_t cancelled_records = 0;
  int64_t cancelled_accessor = 0;
  std::map<RequestId, std::vector<std::pair<int, RequestRecord>>> by_id;
  for (int r = 0; r < fleet.num_replicas(); ++r) {
    const EngineMetrics& m = fleet.replica(r).metrics();
    cancelled_accessor += m.CancelledRecords();
    for (const RequestRecord& record : m.finished()) {
      records += 1;
      cancelled_records += record.cancelled ? 1 : 0;
      by_id[static_cast<RequestId>(record.id)].emplace_back(r, record);
    }
  }
  if (records != fc.submitted + fc.rerouted) {
    return "ledger: " + std::to_string(records) + " finished records != submitted " +
           std::to_string(fc.submitted) + " + rerouted " + std::to_string(fc.rerouted);
  }
  if (cancelled_records != fc.death_cancels + client_cancels) {
    return "ledger: cancelled records " + std::to_string(cancelled_records) +
           " != death_cancels " + std::to_string(fc.death_cancels) + " + client cancels " +
           std::to_string(client_cancels);
  }
  if (fc.cancelled != client_cancels) {
    return "cancelled counter " + std::to_string(fc.cancelled) + " != successful cancels " +
           std::to_string(client_cancels);
  }
  if (cancelled_accessor != cancelled_records) {
    return "EngineMetrics::CancelledRecords disagrees with the record scan";
  }
  if (static_cast<int64_t>(by_id.size()) != submitted) {
    return "ids with records " + std::to_string(by_id.size()) + " != submitted " +
           std::to_string(submitted);
  }
  for (const auto& [id, recs] : by_id) {
    const int final_replica = fleet.PlacementOf(id);
    const std::string tag = " (req " + std::to_string(id) + ")";
    if (final_replica < 0) {
      return "finished record with unknown placement" + tag;
    }
    int final_count = 0;
    const RequestRecord* final_record = nullptr;
    for (const auto& [replica, record] : recs) {
      if (replica == final_replica) {
        final_count += 1;
        final_record = &record;
        continue;
      }
      // Any record on a non-final replica is a death-harvest cancel.
      if (!record.cancelled || !record.failed) {
        return "non-final record not a death cancel" + tag;
      }
      if (fleet.ReplicaAlive(replica)) {
        return "death-cancel record on a live replica" + tag;
      }
    }
    if (final_count != 1) {
      return std::to_string(final_count) + " records on the final placement" + tag;
    }
    if (!final_record->cancelled) {
      if (final_record->failed) {
        return "request failed without a cancel" + tag;
      }
      // The no-request-lost core: survivors finish the FULL decode even when the request
      // died mid-stream on another replica.
      const ChaosRequestSpec& spec = s.requests[static_cast<size_t>(id)];
      if (final_record->output_len != spec.output_len) {
        return "completed with output " + std::to_string(final_record->output_len) +
               " != requested " + std::to_string(spec.output_len) + tag;
      }
    }
  }

  if (activity != nullptr) {
    activity->kills += fc.replica_deaths;
    activity->stalls += fc.replica_stalls;
    activity->fires += fleet.FleetFaultFires();
    activity->death_cancels += fc.death_cancels;
    activity->rerouted += fc.rerouted;
  }
  if (signature != nullptr) {
    std::ostringstream sig;
    for (int r = 0; r < fleet.num_replicas(); ++r) {
      sig << "--- replica " << r << " alive=" << fleet.ReplicaAlive(r) << " ---\n";
      for (const RequestRecord& record : fleet.replica(r).metrics().finished()) {
        char times[128];
        std::snprintf(times, sizeof(times), "%.12g/%.12g/%.12g/%.12g", record.arrival_time,
                      record.first_scheduled_time, record.first_token_time,
                      record.finish_time);
        sig << record.id << ":" << record.prompt_len << ":" << record.output_len << ":"
            << record.cached_prefix_tokens << ":" << record.preemptions << ":"
            << record.failed << ":" << record.cancelled << ":" << times << "\n";
      }
    }
    sig << "submitted=" << fc.submitted << " deaths=" << fc.replica_deaths
        << " stalls=" << fc.replica_stalls << " death_cancels=" << fc.death_cancels
        << " rerouted=" << fc.rerouted << " ignored=" << fc.death_fires_ignored
        << " cancelled=" << fc.cancelled << " fires=" << fleet.FleetFaultFires()
        << " steps=" << fleet.fleet_steps() << "\n";
    *signature += sig.str();
  }
  return std::string();
}

// Audited run + determinism differential + (fault-free only) the armed-never-fires purity
// differential: arming the replica sites with unreachable triggers must not perturb a single
// byte of the outcome.
std::string CheckFleetChaosSchedule(const FleetChaosSchedule& s,
                                    FleetChaosActivity* activity = nullptr) {
  std::string sig_a;
  std::string failure = RunFleetChaosSchedule(s, /*with_audit=*/true, &sig_a, activity);
  if (!failure.empty()) {
    return failure;
  }
  std::string sig_b;
  failure = RunFleetChaosSchedule(s, /*with_audit=*/false, &sig_b, nullptr);
  if (!failure.empty()) {
    return failure + " (second run)";
  }
  if (sig_a != sig_b) {
    return "nondeterministic fleet chaos outcome:\n--- run A ---\n" + sig_a +
           "--- run B ---\n" + sig_b;
  }
  if (s.fault_free() && std::getenv("JENGA_FAULT_PLAN") == nullptr) {
    FleetChaosSchedule armed = s;
    armed.fleet_plan = "replica_death:at=1000000000,replica_stall:at=1000000000";
    std::string sig_armed;
    failure = RunFleetChaosSchedule(armed, /*with_audit=*/false, &sig_armed, nullptr);
    if (!failure.empty()) {
      return failure + " (armed-never-fires run)";
    }
    if (sig_armed != sig_a) {
      return "armed-but-idle fault plan perturbed a fault-free run:\n--- unarmed ---\n" +
             sig_a + "--- armed ---\n" + sig_armed;
    }
  }
  return std::string();
}

// Greedy minimization: drop requests (remapping cancel indices), kills, stalls, cancels.
FleetChaosSchedule MinimizeFleetChaosSchedule(FleetChaosSchedule s) {
  bool shrunk = true;
  int budget = 80;
  while (shrunk && budget > 0) {
    shrunk = false;
    for (size_t i = 0; i < s.requests.size() && s.requests.size() > 1 && budget > 0; ++i) {
      FleetChaosSchedule candidate = s;
      candidate.requests.erase(candidate.requests.begin() + static_cast<int64_t>(i));
      std::vector<ChaosFleetCancelSpec> remapped;
      for (ChaosFleetCancelSpec c : candidate.cancels) {
        if (c.request_index == static_cast<int>(i)) {
          continue;
        }
        if (c.request_index > static_cast<int>(i)) {
          c.request_index -= 1;
        }
        remapped.push_back(c);
      }
      candidate.cancels = std::move(remapped);
      --budget;
      if (!CheckFleetChaosSchedule(candidate).empty()) {
        s = candidate;
        shrunk = true;
        break;
      }
    }
    const auto try_drop = [&](auto member) {
      for (size_t i = 0; i < (s.*member).size() && budget > 0; ++i) {
        FleetChaosSchedule candidate = s;
        (candidate.*member).erase((candidate.*member).begin() + static_cast<int64_t>(i));
        --budget;
        if (!CheckFleetChaosSchedule(candidate).empty()) {
          s = candidate;
          return true;
        }
      }
      return false;
    };
    shrunk = try_drop(&FleetChaosSchedule::kills) || shrunk;
    shrunk = try_drop(&FleetChaosSchedule::stalls) || shrunk;
    shrunk = try_drop(&FleetChaosSchedule::cancels) || shrunk;
  }
  return s;
}

void RunFleetChaosTier(uint64_t seed_base) {
  const std::optional<uint64_t> forced_seed = FuzzEnvSeed();
  const int64_t schedules = forced_seed ? 1 : FuzzEnvInt("JENGA_FLEET_CHAOS_SCHEDULES", 150);
  FleetChaosActivity activity;
  for (int64_t i = 0; i < schedules; ++i) {
    const uint64_t seed = forced_seed ? *forced_seed : seed_base + static_cast<uint64_t>(i);
    const FleetChaosSchedule schedule = DrawFleetChaosSchedule(seed);
    if (forced_seed) {
      std::fprintf(stderr, "replaying fleet chaos schedule:\n%s",
                   DescribeFleetChaosSchedule(schedule).c_str());
    }
    const std::string failure = CheckFleetChaosSchedule(schedule, &activity);
    if (failure.empty()) {
      continue;
    }
    const FleetChaosSchedule minimized = MinimizeFleetChaosSchedule(schedule);
    const std::string min_failure = CheckFleetChaosSchedule(minimized);
    const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
    FAIL() << "fleet chaos failure with seed 0x" << std::hex << seed << std::dec << ":\n"
           << failure << "\n\noriginal schedule:\n"
           << DescribeFleetChaosSchedule(schedule) << "\nminimized schedule ("
           << (min_failure.empty() ? "failure did not survive minimization" : min_failure)
           << "):\n"
           << DescribeFleetChaosSchedule(minimized) << "\nreproduce with:\n  JENGA_FUZZ_SEED=0x"
           << std::hex << seed << std::dec
           << " ./build/tests/fleet_chaos_test --gtest_filter=" << info->test_suite_name()
           << "." << info->name();
  }
  std::fprintf(stderr,
               "[fleet-chaos] %lld schedules: deaths=%lld stalls=%lld injector_fires=%lld "
               "death_cancels=%lld rerouted=%lld\n",
               static_cast<long long>(schedules), static_cast<long long>(activity.kills),
               static_cast<long long>(activity.stalls), static_cast<long long>(activity.fires),
               static_cast<long long>(activity.death_cancels),
               static_cast<long long>(activity.rerouted));
  if (!forced_seed && schedules >= 50) {
    // Vacuity guards: over >= 50 schedules, scheduled kills alone land with ~55% probability
    // each — zero fault activity means the wiring is broken, not that we got lucky. And a
    // tier where no death ever harvested live work would never exercise the re-route path.
    EXPECT_GT(activity.total(), 0) << "no replica faults applied across " << schedules
                                   << " fleet chaos schedules";
    EXPECT_GT(activity.rerouted, 0)
        << "no death ever re-routed in-flight work across " << schedules << " schedules";
  }
}

TEST(FleetChaos, DeterministicDriver) { RunFleetChaosTier(0xF1EE70000ull); }

TEST(FleetChaos, DeterministicDriverAltBand) { RunFleetChaosTier(0xF1EE80000ull); }

// ---------------------------------------------------------------------------------------
// Threaded arm: FleetFrontend under mid-flight kills.

uint64_t ThreadedChaosSeed() {
  const char* env = std::getenv("JENGA_STRESS_SEED");
  return env != nullptr ? static_cast<uint64_t>(std::strtoull(env, nullptr, 10)) : 42;
}

void RunThreadedFleetChaos(int num_replicas, int producers, int per_producer, int kills) {
  std::atomic<int64_t> audits{0};
  // Engines run throttled until the last kill lands, so the kills reliably strike replicas
  // that still hold queued and running work (otherwise a fast machine drains the whole load
  // before the killer thread gets scheduled, and the harvest path goes untested).
  std::atomic<bool> throttle{true};
  ServingFrontend::Options options;
  options.queue_capacity = 64;
  options.step_observer = [&audits, &throttle](Engine& engine) {
    if (throttle.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
    static thread_local int64_t step = 0;
    if ((step++ & 63) != 0) {
      return;
    }
    static thread_local AllocatorAuditor auditor;
    auditor.AttachAllocator(&engine.kv().allocator_mutable());
    const auto violations = auditor.Audit();
    auditor.DetachAll();
    ASSERT_TRUE(violations.empty()) << violations.front();
    audits.fetch_add(1, std::memory_order_relaxed);
  };
  FleetConfig config = TestFleetConfig(num_replicas, RoutePolicy::kPrefixAffinity,
                                       ThreadedChaosSeed());
  const KvSpec spec = MakeJengaSpec(config.engine.model, 16, false);
  config.engine.pool_bytes_override = spec.LcmPageBytes() * 24;
  config.spill_queue_depth = 4;
  config.spill_occupancy = 0.90;
  FleetFrontend fleet(config, options);
  fleet.Start();

  const uint64_t seed = ThreadedChaosSeed();
  const int64_t total_submits = static_cast<int64_t>(producers) * per_producer;
  std::atomic<int64_t> terminal{0};
  std::atomic<int64_t> refused{0};
  std::atomic<int64_t> produced{0};
  std::atomic<int64_t> kills_applied{0};
  std::thread killer([&] {
    for (int k = 0; k < kills; ++k) {
      // Trigger on submission progress, not wall time: the k-th kill lands once roughly
      // (k+1)/(kills+1) of the load has been produced, so later kills always strike a fleet
      // that still has work in flight.
      const int64_t trigger = total_submits * (k + 1) / (kills + 1);
      while (produced.load(std::memory_order_acquire) < trigger) {
        std::this_thread::yield();
      }
      // Kill the busiest live replica: a fixed-seed random target can keep hitting an idle
      // replica and never exercise the harvest/re-route path.
      int target = -1;
      int64_t busiest = -1;
      for (int i = 0; i < num_replicas; ++i) {
        if (!fleet.ReplicaAlive(i)) {
          continue;
        }
        const ServingFrontend::Counters rc = fleet.replica(i).counters();
        const int64_t in_flight =
            rc.submitted - rc.finished - rc.cancelled - rc.failed - rc.cancelled_queued;
        if (in_flight > busiest) {
          busiest = in_flight;
          target = i;
        }
      }
      if (target >= 0 && fleet.KillReplica(target)) {
        kills_applied.fetch_add(1, std::memory_order_relaxed);
      }
    }
    throttle.store(false, std::memory_order_relaxed);
  });
  fleet.RunClients(producers, [&](int client) {
    Rng rng(seed + static_cast<uint64_t>(client) * 104729);
    std::vector<StreamHandle> streams;
    std::vector<RequestId> ids;
    for (int i = 0; i < per_producer; ++i) {
      produced.fetch_add(1, std::memory_order_release);
      const RequestId id = fleet.NextRequestId();
      const int article = static_cast<int>(rng.UniformInt(0, 3));
      Request r = MakeRequest(id, ArticlePrompt(article, rng.UniformInt(48, 128), i),
                              rng.UniformInt(4, 24), 0.0);
      StreamHandle stream;
      if (rng.Bernoulli(0.25)) {
        if (!fleet.TrySubmitAsync(std::move(r), &stream).ok()) {
          refused.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      } else {
        stream = fleet.SubmitAsync(std::move(r));
      }
      ASSERT_NE(stream->phase.load(), StreamPhase::kRejected);  // No shutdown yet.
      streams.push_back(stream);
      ids.push_back(id);
      if (rng.Bernoulli(0.2)) {
        fleet.CancelAsync(ids[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))]);
      }
    }
    // Every accepted stream must reach a terminal phase even if its replica died: the
    // harvest re-routes it (adopting this very stream) to a survivor.
    for (const StreamHandle& stream : streams) {
      while (!stream->Done()) {
        std::this_thread::yield();
      }
      terminal.fetch_add(1, std::memory_order_relaxed);
    }
  });
  killer.join();
  fleet.Shutdown();

  const FleetCounters fc = fleet.counters();
  const ServingFrontend::Counters c = fleet.frontend_counters();
  std::fprintf(stderr,
               "[fleet-chaos-threaded] deaths=%lld death_cancels=%lld rerouted=%lld "
               "harvested_queued=%lld finished=%lld cancelled=%lld\n",
               static_cast<long long>(fc.replica_deaths),
               static_cast<long long>(fc.death_cancels), static_cast<long long>(fc.rerouted),
               static_cast<long long>(c.harvested_queued), static_cast<long long>(c.finished),
               static_cast<long long>(c.cancelled));
  EXPECT_EQ(fc.replica_deaths, kills_applied.load());
  EXPECT_LT(fc.replica_deaths, num_replicas);  // Never the last replica.
  EXPECT_GT(kills_applied.load(), 0);
  // Vacuity: the throttle + busiest-replica targeting guarantee each kill strikes a replica
  // with work to harvest — a zero here means the death path silently stopped harvesting.
  EXPECT_GT(fc.death_cancels + c.harvested_queued, 0);
  // Replica-frontend ledgers, kill/harvest aware: accepted submits = client submits plus
  // re-routes; harvested work leaves a replica without a terminal there and re-enters
  // another replica's books through `rerouted`.
  EXPECT_EQ(c.submitted, fc.submitted + fc.rerouted);
  EXPECT_EQ(c.submitted, c.admitted + c.cancelled_queued + c.harvested_queued);
  EXPECT_EQ(c.admitted, c.finished + c.cancelled + c.failed + c.harvested_live);
  EXPECT_EQ(fc.death_cancels, c.harvested_live);
  EXPECT_EQ(fc.rerouted + fc.lost_on_shutdown, c.harvested_live + c.harvested_queued);
  EXPECT_EQ(fc.lost_on_shutdown, 0);
  EXPECT_EQ(fc.backpressure_rejections, refused.load());
  EXPECT_EQ(terminal.load(), fc.submitted);
  EXPECT_EQ(c.rejected, 0);
  EXPECT_EQ(fc.rejected_submits, 0);
  EXPECT_GT(c.finished, 0);
  EXPECT_GT(audits.load(), 0);

  // Quiescent audit over every replica, dead ones included: the death harvest reclaimed
  // everything through CancelRequest, so dead allocators are green too.
  AllocatorAuditor auditor;
  for (int i = 0; i < fleet.num_replicas(); ++i) {
    auditor.AttachAllocator(&fleet.replica(i).engine().kv().allocator_mutable());
  }
  const auto violations = auditor.Audit();
  EXPECT_TRUE(violations.empty()) << violations.front();
  auditor.DetachAll();
}

TEST(FleetChaosThreaded, KillOneOfTwo) {
  RunThreadedFleetChaos(/*num_replicas=*/2, /*producers=*/6, /*per_producer=*/14, /*kills=*/1);
}

TEST(FleetChaosThreaded, KillTwoOfFour) {
  RunThreadedFleetChaos(/*num_replicas=*/4, /*producers=*/8, /*per_producer=*/12, /*kills=*/2);
}

TEST(FleetChaosThreaded, RepeatedKillAttemptsSpareLastReplica) {
  // More kill attempts than replicas: the guard must keep exactly one replica alive and
  // every stream still terminates there.
  RunThreadedFleetChaos(/*num_replicas=*/3, /*producers=*/6, /*per_producer=*/10, /*kills=*/6);
}

}  // namespace
}  // namespace jenga
