#include "src/engine/spec_decode.h"

#include <gtest/gtest.h>

#include "src/baseline/smartspec.h"
#include "tests/engine/test_models.h"

namespace jenga {
namespace {

ModelConfig TinyDraft() {
  ModelConfig model;
  model.name = "tiny-draft";
  model.params_b = 0.02;
  model.hidden_size = 128;
  model.max_context_len = 65536;
  model.compute_layers = 2;
  for (int i = 0; i < 2; ++i) {
    LayerSpec layer;
    layer.kind = LayerKind::kFullAttention;
    layer.num_kv_heads = 1;
    layer.head_dim = 32;
    layer.dtype_bytes = 2;
    model.layers.push_back(layer);
  }
  return model;
}

SpecDecodeConfig TestSpecConfig(ModelConfig target, SpecStrategy strategy, int64_t pool) {
  SpecDecodeConfig config;
  config.target = std::move(target);
  config.draft = TinyDraft();
  config.gpu = TestGpu();
  config.strategy = strategy;
  config.pool_bytes_override = pool;
  config.seed = 7;
  return config;
}

TEST(SmartSpec, SplitProportionalToKvSizes) {
  const PoolSplit split = SmartSpecSplit(TinyFullModel(), TinyDraft(), 1000);
  // Target 1024 B/token vs draft 256 B/token → 4:1 split.
  EXPECT_EQ(split.target_bytes, 800);
  EXPECT_EQ(split.draft_bytes, 200);
  EXPECT_EQ(split.target_bytes + split.draft_bytes, 1000);
}

TEST(SpecDecode, AllStrategiesComplete) {
  for (const SpecStrategy strategy :
       {SpecStrategy::kJenga, SpecStrategy::kVllmMax, SpecStrategy::kVllmManual}) {
    SCOPED_TRACE(SpecStrategyName(strategy));
    SpecDecodeEngine engine(TestSpecConfig(TinyFullModel(), strategy, 1 << 24));
    for (int i = 0; i < 4; ++i) {
      engine.Submit(MakeRequest(i, TextPrompt(128), 32, 0.0));
    }
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
    for (const RequestRecord& record : engine.metrics().finished()) {
      EXPECT_EQ(record.output_len, 32);
    }
  }
}

TEST(SpecDecode, OversizedRequestFailsInsteadOfCrashing) {
  // Regression: when the last remaining request is failed at admission (its first chunk can
  // never fit), StepOnce used to hit a JENGA_CHECK(!waiting_.empty()) abort instead of
  // draining cleanly. Both "alone" and "after normal traffic" orderings must terminate.
  for (const SpecStrategy strategy :
       {SpecStrategy::kJenga, SpecStrategy::kVllmMax, SpecStrategy::kVllmManual}) {
    SCOPED_TRACE(SpecStrategyName(strategy));
    SpecDecodeConfig config = TestSpecConfig(TinyFullModel(), strategy, 1 << 20);
    config.gpu.max_batched_tokens = 8192;
    SpecDecodeEngine engine(config);
    engine.Submit(MakeRequest(0, TextPrompt(64), 8, 0.0));
    engine.Submit(MakeRequest(1, TextPrompt(8192), 8, 0.0));  // > pool in one chunk.
    engine.RunToCompletion();
    ASSERT_EQ(engine.metrics().finished().size(), 2u);
    EXPECT_EQ(engine.metrics().CompletedRequests(), 1);
    EXPECT_EQ(engine.metrics().FailedRequests(), 1);
    for (const RequestRecord& record : engine.metrics().finished()) {
      EXPECT_EQ(record.failed, record.id == 1);
    }
  }
}

TEST(SpecDecode, SelfPreemptedRequestWithFullOutputFinishesAfterRecompute) {
  // Regression: a request that self-preempts mid-decode *after* appending its final output
  // tokens re-enters the decode loop post-recompute with zero tokens left to emit; that used
  // to trip JENGA_CHECK_GT(emit, 0) instead of completing the request. Schedule found by the
  // engine fuzzer (JENGA_FUZZ_SEED=0xE3000208, SpecDecodeFuzz.AllocatorStackNoOffload):
  // req 3's short output (3 <= propose_len + 1) is fully appended when preemption churn under
  // the undersized pool knocks it out mid-decode.
  SpecDecodeConfig config = TestSpecConfig(TinyPyramidModel(), SpecStrategy::kVllmMax, 1409024);
  config.gpu.max_batched_tokens = 96;
  config.max_num_seqs_override = 4;
  config.seed = 0xE3000208ull;
  SpecDecodeEngine engine(config);
  engine.Submit(MakeRequest(0, TextPrompt(81), 30, 0.0));
  engine.Submit(MakeRequest(1, TextPrompt(176), 21, 0.0));
  engine.Submit(MakeRequest(2, TextPrompt(204), 34, 0.0));
  engine.Submit(MakeRequest(3, TextPrompt(142), 3, 0.0));
  engine.RunToCompletion();
  EXPECT_EQ(engine.metrics().CompletedRequests(), 4);
  EXPECT_EQ(engine.metrics().FailedRequests(), 0);
  EXPECT_EQ(engine.request(3).num_generated, 3);
}

TEST(SpecDecode, MacroStepsEmitMultipleTokens) {
  SpecDecodeEngine engine(TestSpecConfig(TinyFullModel(), SpecStrategy::kJenga, 1 << 24));
  engine.Submit(MakeRequest(0, TextPrompt(64), 40, 0.0));
  engine.RunToCompletion();
  // With k = 4 and acceptance 0.7, expected ≈ 2.6 tokens per macro step → far fewer steps
  // than 40 sequential decodes.
  EXPECT_LT(engine.metrics().total_steps(), 30);
}

TEST(SpecDecode, JengaMatchesManualOnHomogeneousModel) {
  // §7.4: Jenga's automatic allocation reaches the manually-tuned optimum for pure
  // self-attention models.
  double times[2] = {0, 0};
  int i = 0;
  for (const SpecStrategy strategy : {SpecStrategy::kJenga, SpecStrategy::kVllmManual}) {
    SpecDecodeEngine engine(TestSpecConfig(TinyFullModel(), strategy, 1 << 22));
    for (int r = 0; r < 8; ++r) {
      engine.Submit(MakeRequest(r, TextPrompt(256), 24, 0.0));
    }
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 8);
    times[i++] = engine.now();
  }
  EXPECT_NEAR(times[0], times[1], times[1] * 0.1);
}

TEST(SpecDecode, JengaBeatsMaxPagingUnderPressure) {
  // vLLM-max charges every draft token a target-sized page; with a tight pool Jenga batches
  // more and finishes sooner.
  double jenga_time = 0.0;
  double max_time = 0.0;
  for (const SpecStrategy strategy : {SpecStrategy::kJenga, SpecStrategy::kVllmMax}) {
    SpecDecodeEngine engine(TestSpecConfig(TinyFullModel(), strategy, 1 << 21));
    for (int r = 0; r < 8; ++r) {
      engine.Submit(MakeRequest(r, TextPrompt(256), 24, 0.0));
    }
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 8);
    (strategy == SpecStrategy::kJenga ? jenga_time : max_time) = engine.now();
  }
  EXPECT_LT(jenga_time, max_time);
}

TEST(SpecDecode, JengaBeatsManualOnHeterogeneousModel) {
  // On a sliding-window target, manual splitting cannot reclaim out-of-window KV.
  double jenga_time = 0.0;
  double manual_time = 0.0;
  for (const SpecStrategy strategy : {SpecStrategy::kJenga, SpecStrategy::kVllmManual}) {
    SpecDecodeEngine engine(TestSpecConfig(TinySlidingModel(64), strategy, 1 << 21));
    for (int r = 0; r < 8; ++r) {
      engine.Submit(MakeRequest(r, TextPrompt(512), 24, 0.0));
    }
    engine.RunToCompletion();
    EXPECT_EQ(engine.metrics().CompletedRequests(), 8);
    (strategy == SpecStrategy::kJenga ? jenga_time : manual_time) = engine.now();
  }
  EXPECT_LT(jenga_time, manual_time);
}

TEST(SpecDecode, DeterministicGivenSeed) {
  auto run = [] {
    SpecDecodeEngine engine(TestSpecConfig(TinyFullModel(), SpecStrategy::kJenga, 1 << 23));
    for (int r = 0; r < 4; ++r) {
      engine.Submit(MakeRequest(r, TextPrompt(100 + r), 16, 0.0));
    }
    engine.RunToCompletion();
    return engine.now();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace jenga
