file(REMOVE_RECURSE
  "CMakeFiles/jenga_metrics.dir/metrics.cc.o"
  "CMakeFiles/jenga_metrics.dir/metrics.cc.o.d"
  "libjenga_metrics.a"
  "libjenga_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jenga_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
