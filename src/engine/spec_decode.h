// Speculative decoding (§6.1, Fig. 19): a draft model proposes `propose_len` tokens per macro
// step and the target model verifies them in one pass. Both models keep KV for every sequence
// token, so the memory manager must serve two different per-token sizes at once. Three
// strategies are compared:
//
//   kJenga      — one two-level allocator over the merged per-group spec of both models,
//   kVllmMax    — PagedAttention with a uniform page sized for the large model; draft KV
//                 wastes (target − draft) bytes per token,
//   kVllmManual — SmartSpec's static pool split, one homogeneous allocator per model:
//                 optimal for pure self-attention, blind to per-layer freeing.

#ifndef JENGA_SRC_ENGINE_SPEC_DECODE_H_
#define JENGA_SRC_ENGINE_SPEC_DECODE_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/engine/deadline_heap.h"
#include "src/engine/gpu.h"
#include "src/fault/fault_injector.h"
#include "src/engine/kv_manager.h"
#include "src/engine/request.h"
#include "src/engine/request_queue.h"
#include "src/metrics/metrics.h"
#include "src/metrics/step_profiler.h"
#include "src/offload/swap_manager.h"

namespace jenga {

enum class SpecStrategy { kJenga, kVllmMax, kVllmManual };

[[nodiscard]] const char* SpecStrategyName(SpecStrategy strategy);

struct SpecDecodeConfig {
  ModelConfig target;
  ModelConfig draft;
  GpuSpec gpu;
  SpecStrategy strategy = SpecStrategy::kJenga;
  int propose_len = 4;
  double acceptance_rate = 0.7;
  int tokens_per_page = 16;
  uint64_t seed = 1;
  int64_t pool_bytes_override = 0;
  int max_num_seqs_override = 0;
  // Host-memory KV offload tier (disabled by default). With multiple managers the swap set
  // covers both models' KV; all managers must restore together.
  OffloadConfig offload;
  // Fault injection (empty plan = disabled) and the load-shedding admission gate; see
  // EngineConfig for semantics.
  FaultConfig fault;
  int shed_after_blocked_steps = 0;
  double shed_occupancy_watermark = 0.95;
  // kVllmManual only: fraction of the (post-reservation) pool given to the draft model's
  // manager. Negative (default) uses the SmartSpec byte-proportional split; the adaptive
  // governor (src/elastic) starts from whichever split is configured and rebalances at run
  // time via ShiftSplit.
  double manual_draft_fraction = -1.0;
};

class SpecDecodeEngine;

// Step-boundary hook: the elastic governor's attach point for the spec-decode engine (the
// adaptive draft/target split policy). Same contract as EngineStepHook: called at the top of
// every macro step with work pending; detached (nullptr) keeps behavior byte-identical.
class SpecStepHook {
 public:
  virtual ~SpecStepHook() = default;
  virtual void OnStepBoundary(SpecDecodeEngine& engine) = 0;
};

class SpecDecodeEngine {
 public:
  explicit SpecDecodeEngine(SpecDecodeConfig config);

  void Submit(Request request);
  bool StepOnce();
  void RunToCompletion(int64_t max_steps = 1000000);

  // Aborts a request in any state with full resource reclamation across all managers and the
  // host tier; same contract as Engine::CancelRequest.
  bool CancelRequest(RequestId id);

  // Non-convergence / test-failure diagnostic dump.
  void DumpStateForDebug(std::ostream& os) const;

  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] const EngineMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const Request& request(RequestId id) const;
  [[nodiscard]] int num_running() const { return static_cast<int>(running_.size()); }
  [[nodiscard]] int num_waiting() const { return static_cast<int>(waiting_.size()); }
  [[nodiscard]] int num_managers() const { return static_cast<int>(managers_.size()); }
  [[nodiscard]] const KvManager& manager(int i) const { return *managers_[static_cast<size_t>(i)]; }
  // Mutable access for the audit layer (tests only).
  [[nodiscard]] KvManager& manager_mutable(int i) { return *managers_[static_cast<size_t>(i)]; }
  // nullptr when the offload tier is disabled.
  [[nodiscard]] const SwapManager* swap() const { return swap_.get(); }
  [[nodiscard]] SwapManager* swap_mutable() { return swap_.get(); }
  [[nodiscard]] const SpecDecodeConfig& config() const { return config_; }

  // --- Elastic split operations (MemoryGovernor entry points; see src/elastic) ---

  void set_step_hook(SpecStepHook* hook) { step_hook_ = hook; }
  // Per-phase step profiler; same contract as Engine::set_step_profiler (wall clock only,
  // detached = one null test per scope, attached = byte-identical scheduling).
  void set_step_profiler(StepProfiler* profiler) { prof_ = profiler; }
  [[nodiscard]] EngineMetrics& metrics_mutable() { return metrics_; }
  // nullptr when no faults are configured.
  [[nodiscard]] FaultInjector* fault_injector() { return fault_.get(); }
  // Occupancy of one manager's pool in [0, 1] (0 on an empty pool).
  [[nodiscard]] double PoolOccupancyOf(int manager_index) const;
  // Moves roughly `bytes` of pool capacity from manager `from` to manager `to` by draining
  // trailing large pages from one homogeneous pool and appending them to the other (the
  // audited adaptive draft/target rebalance, kVllmManual only). Both fault sites
  // (pool_shrink_drain for the donor, pool_grow for the recipient) are consulted before any
  // mutation, so a fire rolls the whole transfer back with zero net change. Page sizes
  // differ between the pools; the recipient gains ⌊freed / its page size⌋ pages and the
  // sub-page remainder is re-grown back onto the donor rather than stranded. Returns the
  // bytes actually transferred (0 on rollback, a pinned donor tail, or a non-manual split).
  int64_t ShiftSplit(int from, int to, int64_t bytes);

 private:
  [[nodiscard]] Request& Get(RequestId id);
  [[nodiscard]] bool AllocateAll(Request& r, int64_t tokens);
  void ReleaseAll(Request& r, bool finished = false);
  void StepComputedAll(Request& r);
  void AdmitAll(Request& r);
  void Preempt(RequestId id);
  void FinishRequest(Request& r, bool failed);
  void ExpireDeadlines();
  // JENGA_CHECK_DEADLINES fuzz arm: asserts the heap-derived expired set matches a
  // brute-force queue scan (same contract as Engine::CheckDeadlineHeapAgainstScan).
  void CheckDeadlineHeapAgainstScan();
  // Inlined disabled path — see Engine::MaybeShedHead.
  void MaybeShedHead() {
    if (config_.shed_after_blocked_steps <= 0 ||
        head_blocked_steps_ < config_.shed_after_blocked_steps || waiting_.empty()) {
      return;
    }
    MaybeShedHeadSlow();
  }
  void MaybeShedHeadSlow();
  // Inlined null path — see Engine::SyncFaultMetrics.
  void SyncFaultMetrics() {
    if (fault_ != nullptr || swap_ != nullptr) [[unlikely]] {
      SyncFaultMetricsSlow();
    }
  }
  void SyncFaultMetricsSlow();

  SpecDecodeConfig config_;
  GpuSim target_gpu_;
  GpuSim draft_gpu_;
  // One merged manager (kJenga / kVllmMax) or [target, draft] managers (kVllmManual).
  std::vector<std::unique_ptr<KvManager>> managers_;
  std::unique_ptr<SwapManager> swap_;
  std::unique_ptr<FaultInjector> fault_;  // nullptr when no faults are configured.
  SpecStepHook* step_hook_ = nullptr;     // Not owned; nullptr = no governor attached.
  StepProfiler* prof_ = nullptr;          // Not owned; nullptr = no profiler attached.
  int max_num_seqs_ = 0;
  int max_batched_tokens_ = 0;
  int head_blocked_steps_ = 0;
  bool has_deadlines_ = false;

  Rng rng_;
  std::unordered_map<RequestId, Request> requests_;
  // Indexed FIFOs (see request_queue.h): iteration order matches the deque/vector they
  // replaced, with O(1) mid-queue removal on preempt/cancel/finish.
  RequestQueue waiting_;
  RequestQueue running_;
  // Lazy min-heap over submitted deadlines (see deadline_heap.h); entries for requests that
  // finished early are discarded when they surface. Keeps ExpireDeadlines O(1) per step.
  DeadlineHeap deadlines_;
  std::vector<RequestId> expired_buf_;  // Scratch for ExpireDeadlines (reused across steps).
  double now_ = 0.0;
  Tick tick_ = 0;
  EngineMetrics metrics_;
};

}  // namespace jenga

#endif  // JENGA_SRC_ENGINE_SPEC_DECODE_H_
